//! One runner per table/figure of the paper.
//!
//! Every function takes `scale` (1 = quick CI-sized run, larger = closer
//! to the paper's operation counts) and prints its results; it also
//! returns the raw rows so tests and EXPERIMENTS.md generation can check
//! shapes programmatically.
//!
//! Each figure enumerates its cells into an [`ExperimentGrid`] — one
//! independent `(config, workload, seed)` simulation per cell — and runs
//! them on the worker pool. Cells never print; tables are assembled from
//! the ordered results afterwards, so serial (`--jobs 1`) and parallel
//! runs produce byte-identical output.

use barrier_io::{DeviceProfile, FileRef, IoStack, OpKind, SimDuration, StackConfig, Workload};
use bio_flash::BarrierMode;
use bio_workloads::{
    Dwsl, MailQueue, OltpInsert, RandWrite, RocksDbWal, Sqlite, SqliteJournalMode, SyncMode,
    Varmail, WriteMode,
};

use crate::{print_table, run_to_completion, run_windowed, run_windowed_stack, ExperimentGrid};

fn huge() -> u64 {
    u64::MAX / 2
}

fn warm() -> SimDuration {
    SimDuration::from_millis(50)
}

fn window(scale: u64) -> SimDuration {
    SimDuration::from_millis(200 * scale)
}

fn buffered_workload(region: u64) -> Box<dyn Workload> {
    Box::new(RandWrite::new(
        FileRef::Global(0),
        region,
        WriteMode::Buffered,
        huge(),
    ))
}

fn sync_workload(region: u64, sync: SyncMode) -> Box<dyn Workload> {
    Box::new(RandWrite::new(
        FileRef::Global(0),
        region,
        WriteMode::SyncEach(sync),
        huge(),
    ))
}

/// One single-thread windowed run; returns `(write KIOPS, mean QD)`.
fn measure_kiops(
    cfg: StackConfig,
    mk: impl FnOnce() -> Box<dyn Workload>,
    scale: u64,
) -> (f64, f64) {
    let mut holder = Some(mk());
    let report = run_windowed(
        cfg,
        move |_| holder.take().expect("single thread"),
        1,
        warm(),
        window(scale),
    );
    (report.write_kiops, report.mean_qd)
}

// ---------------------------------------------------------------------
// Fig 1 — ordered write vs buffered write across device parallelism.
// ---------------------------------------------------------------------

/// Fig 1: `write()+fdatasync()` vs plain `write()` IOPS ratio per device.
pub fn fig01(scale: u64) -> Vec<(String, f64, f64, f64)> {
    // Device letters follow the paper: A eMMC, B UFS, C SATA, D NVMe,
    // E SATA+supercap, F PCIe, G 32-channel flash array (+HDD reference).
    let devices: Vec<(&str, DeviceProfile)> = vec![
        ("A:mobile/eMMC", DeviceProfile::emmc()),
        ("B:mobile/UFS", DeviceProfile::ufs()),
        ("C:server/SATA", DeviceProfile::plain_ssd()),
        ("D:server/NVMe", {
            let mut p = DeviceProfile::flash_array(16);
            p.name = "NVMe".into();
            p
        }),
        ("E:SATA-supercap", DeviceProfile::supercap_ssd()),
        ("F:server/PCIe", {
            let mut p = DeviceProfile::flash_array(24);
            p.name = "PCIe".into();
            p
        }),
        ("G:flash-array", DeviceProfile::flash_array(32)),
        ("HDD", DeviceProfile::hdd()),
    ];
    let region = 8192;
    let mut grid = ExperimentGrid::new();
    for (label, dev) in &devices {
        let mut bcfg = StackConfig::ext4_dr(dev.clone());
        bcfg.fs.writeback_interval = SimDuration::from_millis(20);
        grid.push(format!("fig01/{label}/buffered"), move || {
            measure_kiops(bcfg, || buffered_workload(region), scale).0
        });
        let ocfg = StackConfig::ext4_dr(dev.clone());
        grid.push(format!("fig01/{label}/ordered"), move || {
            measure_kiops(ocfg, || sync_workload(region, SyncMode::Fdatasync), scale).0
        });
    }
    let results = grid.run();
    assert_eq!(
        results.len(),
        2 * devices.len(),
        "fig01 cell/device pairing"
    );
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (i, (label, _)) in devices.iter().enumerate() {
        let (buffered, ordered) = (results[2 * i], results[2 * i + 1]);
        let ratio = if buffered > 0.0 {
            100.0 * ordered / buffered
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            format!("{buffered:.1}"),
            format!("{ordered:.2}"),
            format!("{ratio:.1}%"),
        ]);
        out.push((label.to_string(), buffered, ordered, ratio));
    }
    print_table(
        "Fig 1 — Ordered write() vs buffered write() (4KB random)",
        &[
            "device",
            "buffered KIOPS",
            "ordered KIOPS",
            "ordered/buffered",
        ],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 9 — 4KB random write, XnF / X / B / P per device.
// ---------------------------------------------------------------------

/// One Fig 9 cell.
#[derive(Debug, Clone)]
pub struct Fig9Cell {
    /// Device name.
    pub device: String,
    /// Scenario label (XnF/X/B/P).
    pub scenario: &'static str,
    /// Thousands of 4 KiB writes per second.
    pub kiops: f64,
    /// Mean device queue depth.
    pub qd: f64,
}

/// Fig 9: IOPS and queue depth for the four ordering scenarios.
pub fn fig09(scale: u64) -> Vec<Fig9Cell> {
    let region = 8192;
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for dev in [
        DeviceProfile::ufs(),
        DeviceProfile::plain_ssd(),
        DeviceProfile::supercap_ssd(),
    ] {
        type MkW = Box<dyn FnOnce() -> Box<dyn Workload> + Send>;
        let scenarios: Vec<(&'static str, StackConfig, MkW)> = vec![
            (
                "XnF",
                StackConfig::ext4_dr(dev.clone()),
                Box::new(move || sync_workload(region, SyncMode::Fdatasync)),
            ),
            (
                "X",
                StackConfig::ext4_od(dev.clone()),
                Box::new(move || sync_workload(region, SyncMode::Fdatasync)),
            ),
            (
                "B",
                StackConfig::bfs(dev.clone()),
                Box::new(move || sync_workload(region, SyncMode::Fdatabarrier)),
            ),
            (
                "P",
                StackConfig::ext4_dr(dev.clone()),
                Box::new(move || buffered_workload(region)),
            ),
        ];
        for (label, cfg, mk) in scenarios {
            meta.push((dev.name.clone(), label));
            grid.push(format!("fig09/{}/{label}", dev.name), move || {
                measure_kiops(cfg, mk, scale)
            });
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for ((device, scenario), (kiops, qd)) in meta.into_iter().zip(results) {
        rows.push(vec![
            device.clone(),
            scenario.to_string(),
            format!("{kiops:.2}"),
            format!("{qd:.2}"),
        ]);
        cells.push(Fig9Cell {
            device,
            scenario,
            kiops,
            qd,
        });
    }
    print_table(
        "Fig 9 — 4KB random write: XnF (flush), X (wait-on-transfer), B (barrier), P (buffered)",
        &["device", "scenario", "KIOPS", "mean QD"],
        &rows,
    );
    cells
}

// ---------------------------------------------------------------------
// Fig 10 — queue depth over time, Wait-on-Transfer vs barrier.
// ---------------------------------------------------------------------

/// Fig 10: queue-depth traces (down-sampled) for X vs B on two devices.
pub fn fig10(scale: u64) -> Vec<(String, Vec<f64>)> {
    let mut grid = ExperimentGrid::new();
    for dev in [DeviceProfile::plain_ssd(), DeviceProfile::ufs()] {
        for (label, cfg, sync) in [
            (
                "Wait-on-Transfer",
                StackConfig::ext4_od(dev.clone()),
                SyncMode::Fdatasync,
            ),
            (
                "Barrier",
                StackConfig::bfs(dev.clone()),
                SyncMode::Fdatabarrier,
            ),
        ] {
            let name = format!("{} / {}", dev.name, label);
            grid.push(format!("fig10/{name}"), move || {
                let (stack, _) = run_windowed_stack(
                    cfg,
                    |_| sync_workload(8192, sync),
                    1,
                    warm(),
                    window(scale),
                );
                let now = stack.now();
                let from = now - window(scale);
                let series: Vec<f64> = stack
                    .device_at(0)
                    .qd_series()
                    .resample(from, now, 24)
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                (name, series)
            });
        }
    }
    let out = grid.run();
    for (name, series) in &out {
        let plot: String = series
            .iter()
            .map(|v| {
                let steps = "▁▂▃▄▅▆▇█";
                let idx = ((v / 32.0) * 7.0).clamp(0.0, 7.0) as usize;
                steps.chars().nth(idx).unwrap_or('▁')
            })
            .collect();
        println!("Fig10 {name:<28} mean-QD trace: {plot}");
    }
    out
}

// ---------------------------------------------------------------------
// Table 1 — fsync latency statistics.
// ---------------------------------------------------------------------

/// One Table 1 row: latency stats in milliseconds.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Device name.
    pub device: String,
    /// Stack label.
    pub stack: &'static str,
    /// Mean, median, p99, p99.9, p99.99 (ms).
    pub stats: [f64; 5],
}

/// Ages a device so garbage collection is active during the measurement
/// (responsible for the paper's heavy fsync tail latencies).
fn aged(mut dev: DeviceProfile, run_blocks: u64) -> DeviceProfile {
    let seg_pages = dev.pages_per_segment as u64;
    dev.segments = ((run_blocks / seg_pages).max(8) as usize).min(dev.segments);
    dev
}

/// Table 1: fsync latency (mean/median/p99/p99.9/p99.99) EXT4 vs BFS.
/// The workload is the paper's "4 KByte write() followed by fsync()"
/// (overwrites of a warm region), on an aged device so GC contributes the
/// tail.
pub fn table1(scale: u64) -> Vec<Table1Row> {
    let n = 1_000 * scale;
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for dev in [
        DeviceProfile::ufs(),
        DeviceProfile::plain_ssd(),
        DeviceProfile::supercap_ssd(),
    ] {
        let dev = aged(dev, n * 8);
        for (label, cfg) in [
            ("EXT4", StackConfig::ext4_dr(dev.clone())),
            ("BFS", StackConfig::bfs(dev.clone())),
        ] {
            meta.push((dev.name.clone(), label));
            grid.push(format!("table1/{}/{label}", dev.name), move || {
                let report = run_to_completion(
                    cfg,
                    move |_| {
                        Box::new(RandWrite::new(
                            FileRef::Global(0),
                            64,
                            WriteMode::SyncEach(SyncMode::Fsync),
                            n,
                        )) as Box<dyn Workload>
                    },
                    1,
                    SimDuration::ZERO,
                    SimDuration::from_secs(3600),
                );
                let f = report.run.op(OpKind::Fsync).expect("fsync ran").latency;
                [
                    f.mean.as_millis_f64(),
                    f.p50.as_millis_f64(),
                    f.p99.as_millis_f64(),
                    f.p999.as_millis_f64(),
                    f.p9999.as_millis_f64(),
                ]
            });
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut rows = Vec::new();
    let mut printed = Vec::new();
    for ((device, stack), stats) in meta.into_iter().zip(results) {
        printed.push(vec![
            device.clone(),
            stack.to_string(),
            format!("{:.2}", stats[0]),
            format!("{:.2}", stats[1]),
            format!("{:.2}", stats[2]),
            format!("{:.2}", stats[3]),
            format!("{:.2}", stats[4]),
        ]);
        rows.push(Table1Row {
            device,
            stack,
            stats,
        });
    }
    print_table(
        "Table 1 — fsync() latency statistics (ms)",
        &[
            "device", "stack", "mean", "median", "p99", "p99.9", "p99.99",
        ],
        &printed,
    );
    rows
}

// ---------------------------------------------------------------------
// Fig 11 — context switches per sync call.
// ---------------------------------------------------------------------

/// Fig 11: application-level context switches per fsync/fbarrier.
pub fn fig11(scale: u64) -> Vec<(String, &'static str, f64)> {
    let n = 1_000 * scale;
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for dev in [
        DeviceProfile::ufs(),
        DeviceProfile::plain_ssd(),
        DeviceProfile::supercap_ssd(),
    ] {
        let cells: Vec<(StackConfig, SyncMode, OpKind)> = vec![
            (
                StackConfig::ext4_dr(dev.clone()),
                SyncMode::Fsync,
                OpKind::Fsync,
            ),
            (
                StackConfig::bfs(dev.clone()),
                SyncMode::Fsync,
                OpKind::Fsync,
            ),
            (
                StackConfig::ext4_od(dev.clone()),
                SyncMode::Fsync,
                OpKind::Fsync,
            ),
            (
                StackConfig::bfs(dev.clone()).ordering_only(),
                SyncMode::Fbarrier,
                OpKind::Fbarrier,
            ),
        ];
        for (cfg, sync, kind) in cells {
            let label = cfg.stack_label();
            meta.push((dev.name.clone(), label));
            grid.push(format!("fig11/{}/{label}", dev.name), move || {
                // Overwrites of a warm region: the paper's workload, where
                // the timer-tick effect makes fsync degenerate to
                // fdatasync.
                let report = run_to_completion(
                    cfg,
                    move |_| {
                        Box::new(RandWrite::new(
                            FileRef::Global(0),
                            64,
                            WriteMode::SyncEach(sync),
                            n,
                        )) as Box<dyn Workload>
                    },
                    1,
                    SimDuration::ZERO,
                    SimDuration::from_secs(3600),
                );
                report.run.op(kind).map_or(0.0, |o| o.switches_per_op)
            });
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for ((device, label), s) in meta.into_iter().zip(results) {
        rows.push(vec![device.clone(), label.to_string(), format!("{s:.2}")]);
        out.push((device, label, s));
    }
    print_table(
        "Fig 11 — context switches per fsync()/fbarrier()",
        &["device", "stack", "switches/op"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 12 — BarrierFS queue depth: fsync vs fbarrier.
// ---------------------------------------------------------------------

/// Fig 12: peak device queue depth under fsync vs fbarrier on BarrierFS.
pub fn fig12(scale: u64) -> Vec<(&'static str, f64, f64)> {
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for (label, sync) in [("fsync", SyncMode::Fsync), ("fbarrier", SyncMode::Fbarrier)] {
        meta.push(label);
        grid.push(format!("fig12/{label}"), move || {
            let mut cfg = StackConfig::bfs(DeviceProfile::ufs());
            // fsync exercises the full commit path (allocating appends);
            // the ordering-guarantee row overwrites a warm region, where
            // most fbarrier calls degenerate to fdatabarrier and never
            // block — that is what lets the queue fill up (Fig 12(b)).
            let mk: Box<dyn Fn() -> Box<dyn Workload>> = if sync == SyncMode::Fsync {
                cfg.fs.timer_tick = SimDuration::from_micros(1);
                Box::new(move || Box::new(Dwsl::new(sync, huge())) as Box<dyn Workload>)
            } else {
                Box::new(move || {
                    Box::new(RandWrite::new(
                        FileRef::Global(0),
                        64,
                        WriteMode::SyncEach(sync),
                        huge(),
                    )) as Box<dyn Workload>
                })
            };
            let (stack, _report) = run_windowed_stack(cfg, |_| mk(), 1, warm(), window(scale));
            let now = stack.now();
            let from = now - window(scale);
            let peak = stack.device_at(0).qd_series().max_in(from, now);
            let mean = stack.device_at(0).qd_series().weighted_mean(from, now);
            (mean, peak)
        });
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (label, (mean, peak)) in meta.into_iter().zip(results) {
        rows.push(vec![
            label.to_string(),
            format!("{mean:.2}"),
            format!("{peak:.0}"),
        ]);
        out.push((label, mean, peak));
    }
    print_table(
        "Fig 12 — BarrierFS queue depth: durability vs ordering guarantee",
        &["call", "mean QD", "peak QD"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 13 — journaling scalability (fxmark DWSL).
// ---------------------------------------------------------------------

/// Fig 13: ops/sec vs core (=thread) count, EXT4-DR vs BFS-DR.
pub fn fig13(scale: u64) -> Vec<(String, &'static str, usize, f64)> {
    let cores = [1usize, 2, 4, 6, 8, 10, 12];
    let writes = 200 * scale;
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for dev in [DeviceProfile::plain_ssd(), DeviceProfile::supercap_ssd()] {
        for mk_cfg in [
            StackConfig::ext4_dr as fn(DeviceProfile) -> StackConfig,
            StackConfig::bfs as fn(DeviceProfile) -> StackConfig,
        ] {
            for &n in &cores {
                let cfg = mk_cfg(dev.clone());
                let label = cfg.stack_label();
                meta.push((dev.name.clone(), label, n));
                grid.push(format!("fig13/{}/{label}/{n}", dev.name), move || {
                    let report = run_to_completion(
                        cfg,
                        |_| Box::new(Dwsl::new(SyncMode::Fsync, writes)) as Box<dyn Workload>,
                        n,
                        SimDuration::ZERO,
                        SimDuration::from_secs(3600),
                    );
                    report.run.txns_per_sec()
                });
            }
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for ((device, label, n), ops) in meta.into_iter().zip(results) {
        rows.push(vec![
            device.clone(),
            label.to_string(),
            n.to_string(),
            format!("{:.0}", ops),
        ]);
        out.push((device, label, n, ops));
    }
    print_table(
        "Fig 13 — fxmark DWSL scalability (ops/s per core count)",
        &["device", "stack", "cores", "ops/s"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 14 — SQLite.
// ---------------------------------------------------------------------

/// Fig 14: SQLite inserts/sec per journal mode and stack.
pub fn fig14(scale: u64) -> Vec<(String, String, &'static str, f64)> {
    let inserts = 500 * scale;
    type MkSqlite = fn(SqliteJournalMode, FileRef, FileRef, u64) -> Sqlite;
    // (a) mobile storage: durability rows.
    // (b) plain-SSD: ordering rows + the EXT4-DR baseline for the 73x claim.
    let cells: Vec<(DeviceProfile, StackConfig, MkSqlite)> = vec![
        (
            DeviceProfile::ufs(),
            StackConfig::ext4_dr(DeviceProfile::ufs()),
            Sqlite::durability,
        ),
        (
            DeviceProfile::ufs(),
            StackConfig::bfs(DeviceProfile::ufs()),
            Sqlite::barrier_durability,
        ),
        (
            DeviceProfile::ufs(),
            StackConfig::bfs(DeviceProfile::ufs()).ordering_only(),
            Sqlite::ordering,
        ),
        (
            DeviceProfile::plain_ssd(),
            StackConfig::ext4_dr(DeviceProfile::plain_ssd()),
            Sqlite::durability,
        ),
        (
            DeviceProfile::plain_ssd(),
            StackConfig::ext4_od(DeviceProfile::plain_ssd()),
            Sqlite::durability,
        ),
        (
            DeviceProfile::plain_ssd(),
            StackConfig::optfs(DeviceProfile::plain_ssd()),
            Sqlite::ordering,
        ),
        (
            DeviceProfile::plain_ssd(),
            StackConfig::bfs(DeviceProfile::plain_ssd()).ordering_only(),
            Sqlite::ordering,
        ),
    ];
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for mode in [SqliteJournalMode::Persist, SqliteJournalMode::Wal] {
        let mode_name = match mode {
            SqliteJournalMode::Persist => "PERSIST",
            SqliteJournalMode::Wal => "WAL",
        };
        for (dev, cfg, mk) in &cells {
            let label = cfg.stack_label();
            meta.push((mode_name.to_string(), dev.name.clone(), label));
            let (cfg, mk) = (cfg.clone(), *mk);
            grid.push(
                format!("fig14/{mode_name}/{}/{label}", dev.name),
                move || {
                    let mut stack = IoStack::new(cfg);
                    let db = stack.create_global_file();
                    let journal = stack.create_global_file();
                    let w = mk(mode, FileRef::Global(db), FileRef::Global(journal), inserts);
                    stack.add_thread(Box::new(w));
                    stack.start_measuring();
                    stack.run_until_done(SimDuration::from_secs(3600));
                    stack.report().run.txns_per_sec()
                },
            );
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for ((mode_name, device, label), tps) in meta.into_iter().zip(results) {
        rows.push(vec![
            mode_name.clone(),
            device.clone(),
            label.to_string(),
            format!("{tps:.0}"),
        ]);
        out.push((mode_name, device, label, tps));
    }
    print_table(
        "Fig 14 — SQLite inserts/s (PERSIST and WAL journal modes)",
        &["journal", "device", "stack", "inserts/s"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 15 — varmail and OLTP-insert.
// ---------------------------------------------------------------------

/// Fig 15: server workloads across the five stacks on two devices.
pub fn fig15(scale: u64) -> Vec<(String, String, &'static str, f64)> {
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for dev in [DeviceProfile::plain_ssd(), DeviceProfile::supercap_ssd()] {
        let stacks: Vec<(StackConfig, SyncMode)> = vec![
            (StackConfig::ext4_dr(dev.clone()), SyncMode::Fsync),
            (StackConfig::bfs(dev.clone()), SyncMode::Fsync),
            (StackConfig::optfs(dev.clone()), SyncMode::Fbarrier),
            (StackConfig::ext4_od(dev.clone()), SyncMode::Fsync),
            (
                StackConfig::bfs(dev.clone()).ordering_only(),
                SyncMode::Fbarrier,
            ),
        ];
        for (cfg, sync) in stacks {
            let label = cfg.stack_label();
            meta.push((dev.name.clone(), label));
            // varmail: 16 threads.
            let iters = 100 * scale;
            let vcfg = cfg.clone();
            grid.push(format!("fig15/{}/{label}/varmail", dev.name), move || {
                let report = run_to_completion(
                    vcfg,
                    |_| Box::new(Varmail::new(sync, iters, 8)) as Box<dyn Workload>,
                    16,
                    SimDuration::ZERO,
                    SimDuration::from_secs(3600),
                );
                report.run.txns_per_sec()
            });
            // OLTP-insert: 8 client threads on shared table/redo/binlog.
            let txns = 200 * scale;
            grid.push(format!("fig15/{}/{label}/oltp", dev.name), move || {
                let mut stack = IoStack::new(cfg);
                let table = stack.create_global_file();
                let redo = stack.create_global_file();
                let binlog = stack.create_global_file();
                for _ in 0..8 {
                    stack.add_thread(Box::new(OltpInsert::new(
                        sync,
                        FileRef::Global(table),
                        FileRef::Global(redo),
                        FileRef::Global(binlog),
                        txns,
                    )));
                }
                stack.start_measuring();
                stack.run_until_done(SimDuration::from_secs(3600));
                stack.report().run.txns_per_sec()
            });
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), 2 * meta.len(), "fig15 cell/meta pairing");
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for ((device, label), pair) in meta.into_iter().zip(results.chunks(2)) {
        let (varmail_ops, oltp_tps) = (pair[0], pair[1]);
        rows.push(vec![
            device.clone(),
            label.to_string(),
            format!("{varmail_ops:.0}"),
            format!("{oltp_tps:.0}"),
        ]);
        out.push((device.clone(), "varmail".to_string(), label, varmail_ops));
        out.push((device, "oltp".to_string(), label, oltp_tps));
    }
    print_table(
        "Fig 15 — server workloads: varmail (iterations/s) and OLTP-insert (Tx/s)",
        &["device", "stack", "varmail it/s", "OLTP Tx/s"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 16 — new server workloads: throughput AND sync tail latency.
// ---------------------------------------------------------------------

/// One Fig 16 cell: throughput plus the sync-call latency tail.
#[derive(Debug, Clone)]
pub struct Fig16Cell {
    /// Device name.
    pub device: String,
    /// Workload label (`rocksdb-wal` / `mail-queue`).
    pub workload: &'static str,
    /// Stack label.
    pub stack: &'static str,
    /// Application transactions per second.
    pub txns_per_sec: f64,
    /// Sync-call latency p50 / p95 / p99 in milliseconds (merged across
    /// all four sync kinds).
    pub sync_ms: [f64; 3],
}

/// Fig 16: the two post-paper server workloads (RocksDB-style WAL +
/// compaction, mail-queue fsync storm) across the five stacks on two
/// devices, reporting tail latency alongside throughput. Ordering-only
/// stacks (BFS-OD, OptFS) win primarily on the latency columns: a
/// barrier returns without waiting on transfer or flush, so the sync
/// tail collapses even where throughput gains are modest.
pub fn fig16(scale: u64) -> Vec<Fig16Cell> {
    fn cell_stats(report: &barrier_io::StackReport) -> (f64, [f64; 3]) {
        let s = report.run.sync_latency;
        (
            report.run.txns_per_sec(),
            [
                s.p50.as_millis_f64(),
                s.p95.as_millis_f64(),
                s.p99.as_millis_f64(),
            ],
        )
    }
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for dev in [DeviceProfile::plain_ssd(), DeviceProfile::supercap_ssd()] {
        let stacks: Vec<(StackConfig, SyncMode)> = vec![
            (StackConfig::ext4_dr(dev.clone()), SyncMode::Fdatasync),
            (StackConfig::bfs(dev.clone()), SyncMode::Fdatasync),
            (StackConfig::optfs(dev.clone()), SyncMode::Fdatabarrier),
            (StackConfig::ext4_od(dev.clone()), SyncMode::Fdatasync),
            (
                StackConfig::bfs(dev.clone()).ordering_only(),
                SyncMode::Fdatabarrier,
            ),
        ];
        for (cfg, sync) in stacks {
            let label = cfg.stack_label();
            // RocksDB-style WAL + compaction: 4 independent DB threads.
            let puts = 300 * scale;
            let rcfg = cfg.clone();
            meta.push((dev.name.clone(), "rocksdb-wal", label));
            grid.push(
                format!("fig16/{}/{label}/rocksdb-wal", dev.name),
                move || {
                    let report = run_to_completion(
                        rcfg,
                        |_| Box::new(RocksDbWal::new(sync, puts)) as Box<dyn Workload>,
                        4,
                        SimDuration::ZERO,
                        SimDuration::from_secs(3600),
                    );
                    cell_stats(&report)
                },
            );
            // Mail-queue fsync storm: 8 queue-manager threads.
            let msgs = 150 * scale;
            meta.push((dev.name.clone(), "mail-queue", label));
            grid.push(
                format!("fig16/{}/{label}/mail-queue", dev.name),
                move || {
                    let report = run_to_completion(
                        cfg,
                        |_| Box::new(MailQueue::new(sync, msgs, 8)) as Box<dyn Workload>,
                        8,
                        SimDuration::ZERO,
                        SimDuration::from_secs(3600),
                    );
                    cell_stats(&report)
                },
            );
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for ((device, workload, stack), (tps, sync_ms)) in meta.into_iter().zip(results) {
        rows.push(vec![
            device.clone(),
            workload.to_string(),
            stack.to_string(),
            format!("{tps:.0}"),
            format!("{:.3}", sync_ms[0]),
            format!("{:.3}", sync_ms[1]),
            format!("{:.3}", sync_ms[2]),
        ]);
        out.push(Fig16Cell {
            device,
            workload,
            stack,
            txns_per_sec: tps,
            sync_ms,
        });
    }
    print_table(
        "Fig 16 — RocksDB-WAL and mail-queue: Tx/s and sync-call latency (ms)",
        &["device", "workload", "stack", "Tx/s", "p50", "p95", "p99"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 17 — multi-queue / multi-device scaling (post-paper).
// ---------------------------------------------------------------------

/// One Fig 17 cell: throughput of one stack on one lane topology.
#[derive(Debug, Clone)]
pub struct Fig17Cell {
    /// Stack label (`EXT4-DR` / `BFS-OD`).
    pub stack: &'static str,
    /// Hardware queues per device.
    pub queues: usize,
    /// Device count.
    pub devices: usize,
    /// Application transactions per second.
    pub txns_per_sec: f64,
    /// Mean device queue depth (averaged over devices).
    pub mean_qd: f64,
    /// Global epochs released by the cross-lane sequencer.
    pub epochs: u64,
}

/// Fig 17: the paper's open question — does order-preserving dispatch
/// survive a multi-queue interface? 256 workload threads drive a DWSL
/// commit storm against {1,2,4,8} hardware queues × {1,2,4} devices,
/// EXT4-DR (Wait-on-Transfer ordering) vs BFS-OD (barrier ordering).
/// EXT4 scales with the added device bandwidth because every fsync
/// already serialises on transfer; BFS's cross-lane epoch sequencer must
/// drain every lane per epoch, so its ordering advantage is bounded by
/// the slowest lane — the grid shows where that cost grows with queue
/// count and where added devices buy it back.
pub fn fig17(scale: u64) -> Vec<Fig17Cell> {
    const THREADS: usize = 256;
    let writes = 2 * scale;
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for (cfg0, sync) in [
        (
            StackConfig::ext4_dr(DeviceProfile::plain_ssd()),
            SyncMode::Fsync,
        ),
        (
            StackConfig::bfs(DeviceProfile::plain_ssd()).ordering_only(),
            SyncMode::Fbarrier,
        ),
    ] {
        for queues in [1usize, 2, 4, 8] {
            for devices in [1usize, 2, 4] {
                let cfg = cfg0
                    .clone()
                    .with_topology(barrier_io::Topology::new(queues, devices, 8));
                meta.push((cfg.stack_label(), queues, devices));
                grid.push(
                    format!("fig17/{}/{queues}q/{devices}dev", cfg.stack_label()),
                    move || {
                        let report = run_to_completion(
                            cfg,
                            move |_| Box::new(Dwsl::new(sync, writes)) as Box<dyn Workload>,
                            THREADS,
                            SimDuration::ZERO,
                            SimDuration::from_secs(3600),
                        );
                        (
                            report.run.txns_per_sec(),
                            report.mean_qd,
                            report.block.epochs_sequenced,
                        )
                    },
                );
            }
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for ((stack, queues, devices), (tps, mean_qd, epochs)) in meta.into_iter().zip(results) {
        rows.push(vec![
            stack.to_string(),
            queues.to_string(),
            devices.to_string(),
            format!("{tps:.0}"),
            format!("{mean_qd:.2}"),
            epochs.to_string(),
        ]);
        out.push(Fig17Cell {
            stack,
            queues,
            devices,
            txns_per_sec: tps,
            mean_qd,
            epochs,
        });
    }
    print_table(
        "Fig 17 — multi-queue scaling: 256-thread DWSL, queues × devices",
        &["stack", "queues", "devices", "Tx/s", "mean QD", "epochs"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Fig 8 — journal commit interval.
// ---------------------------------------------------------------------

/// Fig 8: journal commits per second under a commit storm (the inverse of
/// the commit interval): BFS (tD) > no-flush (tD+tC) > quick flush
/// (tD+tC+te) > full flush (tD+tC+tF).
pub fn fig08(scale: u64) -> Vec<(&'static str, f64)> {
    let cells: Vec<(&'static str, StackConfig, SyncMode)> = vec![
        (
            "BarrierFS (tD)",
            StackConfig::bfs(DeviceProfile::plain_ssd()),
            SyncMode::Fbarrier,
        ),
        (
            "EXT4 no flush (tD+tC)",
            StackConfig::ext4_od(DeviceProfile::plain_ssd()),
            SyncMode::Fsync,
        ),
        (
            "EXT4 quick flush (tD+tC+te)",
            {
                // The same device as the full-flush row, but with PLP: flush
                // degenerates to the t_eps round trip (§4.4).
                let mut d = DeviceProfile::plain_ssd();
                d.plp = true;
                d.name = "plain-SSD+PLP".into();
                StackConfig::ext4_dr(d)
            },
            SyncMode::Fsync,
        ),
        (
            "EXT4 full flush (tD+tC+tF)",
            StackConfig::ext4_dr(DeviceProfile::plain_ssd()),
            SyncMode::Fsync,
        ),
    ];
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for (label, mut cfg, sync) in cells {
        cfg.fs.timer_tick = SimDuration::from_micros(1); // every sync commits
        meta.push(label);
        grid.push(format!("fig08/{label}"), move || {
            let (stack, report) = run_windowed_stack(
                cfg,
                |_| Box::new(Dwsl::new(sync, huge())) as Box<dyn Workload>,
                4,
                warm(),
                window(scale),
            );
            let commits = stack.fs().stats().commits;
            commits as f64 / report.run.elapsed.as_secs_f64()
        });
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (label, per_sec) in meta.into_iter().zip(results) {
        let interval_us = if per_sec > 0.0 {
            1e6 / per_sec
        } else {
            f64::INFINITY
        };
        rows.push(vec![
            label.to_string(),
            format!("{per_sec:.0}"),
            format!("{interval_us:.0}"),
        ]);
        out.push((label, per_sec));
    }
    print_table(
        "Fig 8 — journal commit rate under a commit storm",
        &["configuration", "commits/s", "mean interval (us)"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Ablation: barrier-enforcement engines (§3.2's three options).
// ---------------------------------------------------------------------

/// Ablation: fdatabarrier throughput under each barrier engine.
pub fn ablation_engines(scale: u64) -> Vec<(&'static str, f64)> {
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for (label, mode) in [
        ("in-order writeback", BarrierMode::InOrderWriteback),
        ("transactional", BarrierMode::Transactional),
        ("LFS in-order recovery", BarrierMode::LfsInOrderRecovery),
    ] {
        meta.push(label);
        grid.push(format!("engines/{label}"), move || {
            let dev = DeviceProfile::ufs().with_barrier_mode(mode);
            let cfg = StackConfig::bfs(dev);
            measure_kiops(cfg, || sync_workload(8192, SyncMode::Fdatabarrier), scale).0
        });
    }
    let results = grid.run();
    assert_eq!(results.len(), meta.len(), "grid cell/meta pairing");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (label, kiops) in meta.into_iter().zip(results) {
        rows.push(vec![label.to_string(), format!("{kiops:.2}")]);
        out.push((label, kiops));
    }
    print_table(
        "Ablation — barrier write KIOPS per enforcement engine (UFS-class device)",
        &["engine", "KIOPS"],
        &rows,
    );
    out
}

// ---------------------------------------------------------------------
// Ablation: crash-consistency violations.
// ---------------------------------------------------------------------

/// Crash audit: violation counts over `seeds` random crash points.
pub fn ablation_crash(seeds: u64) -> Vec<(&'static str, u64, u64)> {
    type Cfg = fn() -> StackConfig;
    fn bfs_barrier_dev() -> StackConfig {
        StackConfig::bfs(DeviceProfile::ufs()).with_history()
    }
    fn ext4_full_flush() -> StackConfig {
        StackConfig::ext4_dr(DeviceProfile::ufs()).with_history()
    }
    fn ext4_orderless_dev() -> StackConfig {
        let mut d = DeviceProfile::ufs().with_barrier_mode(BarrierMode::Unsupported);
        d.cache_blocks = 48;
        StackConfig::ext4_od(d).with_history()
    }
    let cells: Vec<(&'static str, Cfg, SyncMode)> = vec![
        (
            "BFS-OD on barrier device",
            bfs_barrier_dev,
            SyncMode::Fbarrier,
        ),
        ("EXT4-DR (full flush)", ext4_full_flush, SyncMode::Fsync),
        (
            "EXT4-OD on orderless device",
            ext4_orderless_dev,
            SyncMode::Fsync,
        ),
    ];
    // One cell per (stack, seed): seeds shard across the worker pool
    // instead of looping inside one long cell, and the per-stack rows are
    // summed from the ordered results afterwards — the aggregation is the
    // same fold the serial loop performed, so output is byte-identical.
    let mut grid = ExperimentGrid::new();
    let mut meta = Vec::new();
    for (label, mk_cfg, sync) in cells {
        meta.push(label);
        for seed in 0..seeds {
            grid.push(format!("crash/{label}/seed{seed}"), move || {
                crate::crash::sampled_crash_violations(
                    mk_cfg().with_seed(seed),
                    sync,
                    SimDuration::from_millis(2 + seed * 3),
                )
            });
        }
    }
    let results = grid.run();
    assert_eq!(
        results.len(),
        meta.len() * seeds as usize,
        "grid cell/meta pairing"
    );
    let per_stack: Vec<(u64, u64)> = if seeds == 0 {
        meta.iter().map(|_| (0, 0)).collect()
    } else {
        results
            .chunks(seeds as usize)
            .map(|chunk| {
                let crashes_with_violation = chunk.iter().filter(|&&v| v > 0).count() as u64;
                let total_violations: u64 = chunk.iter().sum();
                (crashes_with_violation, total_violations)
            })
            .collect()
    };
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, (crashes_with_violation, total_violations)) in meta.into_iter().zip(per_stack) {
        rows.push(vec![
            label.to_string(),
            format!("{crashes_with_violation}/{seeds}"),
            total_violations.to_string(),
        ]);
        out.push((label, crashes_with_violation, total_violations));
    }
    print_table(
        "Ablation — crash-consistency violations over random crash points",
        &["stack", "crashes w/ violations", "total violations"],
        &rows,
    );
    out
}
