//! Argument parsing for the `figures` binary, split out so the CLI
//! contract (notably `--jobs` validation) is unit-testable without
//! spawning the binary.

/// Parsed `figures` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Figure/table selectors: `"all"`, `"fig9"`, `"table1"`, ...
    pub wanted: Vec<String>,
    /// Run-length multiplier (>= 1).
    pub scale: u64,
    /// Seeds for the crash ablation (and traces per stack for
    /// `--crash-enum`).
    pub crash_seeds: u64,
    /// Worker-pool override; `None` = auto (all cores).
    pub jobs: Option<usize>,
    /// Run the exhaustive differential crash enumeration. Deliberately
    /// not part of `--all`: it is a correctness harness, not a paper
    /// figure, and its output depends on `--seeds`.
    pub crash_enum: bool,
    /// `--help` was requested.
    pub help: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            wanted: Vec::new(),
            scale: 1,
            crash_seeds: 20,
            jobs: None,
            crash_enum: false,
            help: false,
        }
    }
}

/// Parses `figures` arguments (everything after the binary name).
///
/// # Errors
///
/// Returns a user-facing message for unknown flags, missing values, and
/// invalid values — in particular `--jobs 0`: a zero-worker pool is
/// meaningless (`std::thread::scope` with no workers would simply hang the
/// grid's consumers), so it is rejected rather than silently reinterpreted.
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => opts.wanted.push("all".into()),
            "--jobs" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| "--jobs requires a worker count".to_string())?;
                let jobs: usize = raw
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got '{raw}'"))?;
                if jobs == 0 {
                    return Err(
                        "--jobs must be >= 1 (use --jobs 1 for a serial run; omit --jobs \
                         to use all cores)"
                            .to_string(),
                    );
                }
                opts.jobs = Some(jobs);
            }
            "--fig" => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or_else(|| "--fig requires a figure number".to_string())?;
                opts.wanted.push(format!("fig{n}"));
            }
            "--table" => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or_else(|| "--table requires a table number".to_string())?;
                opts.wanted.push(format!("table{n}"));
            }
            "--scale" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| "--scale requires a multiplier".to_string())?;
                let scale: u64 = raw
                    .parse()
                    .map_err(|_| format!("--scale expects a positive integer, got '{raw}'"))?;
                opts.scale = scale.max(1);
            }
            "--seeds" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| "--seeds requires a count".to_string())?;
                opts.crash_seeds = raw
                    .parse()
                    .map_err(|_| format!("--seeds expects an integer, got '{raw}'"))?;
            }
            "--crash-enum" => opts.crash_enum = true,
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_with_no_args() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o, CliOptions::default());
    }

    #[test]
    fn jobs_zero_is_rejected_with_clear_message() {
        let err = parse_args(&args(&["--all", "--jobs", "0"])).unwrap_err();
        assert!(err.contains("--jobs must be >= 1"), "unhelpful: {err}");
        assert!(err.contains("serial"), "should point at --jobs 1: {err}");
    }

    #[test]
    fn jobs_requires_a_numeric_value() {
        let err = parse_args(&args(&["--jobs"])).unwrap_err();
        assert!(err.contains("--jobs requires"), "{err}");
        let err = parse_args(&args(&["--jobs", "many"])).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn jobs_one_and_n_are_accepted() {
        assert_eq!(parse_args(&args(&["--jobs", "1"])).unwrap().jobs, Some(1));
        assert_eq!(parse_args(&args(&["--jobs", "8"])).unwrap().jobs, Some(8));
        assert_eq!(parse_args(&args(&["--all"])).unwrap().jobs, None);
    }

    #[test]
    fn selectors_accumulate() {
        let o = parse_args(&args(&["--fig", "9", "--fig", "11", "--table", "1"])).unwrap();
        assert_eq!(o.wanted, vec!["fig9", "fig11", "table1"]);
    }

    #[test]
    fn fig_and_table_require_values() {
        assert!(parse_args(&args(&["--fig"])).is_err());
        assert!(parse_args(&args(&["--table"])).is_err());
    }

    #[test]
    fn scale_clamps_to_one_and_seeds_parse() {
        let o = parse_args(&args(&["--scale", "0", "--seeds", "7"])).unwrap();
        assert_eq!(o.scale, 1);
        assert_eq!(o.crash_seeds, 7);
        assert!(parse_args(&args(&["--scale", "x"])).is_err());
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn crash_enum_flag_parses_and_is_off_by_default() {
        assert!(!parse_args(&args(&["--all"])).unwrap().crash_enum);
        let o = parse_args(&args(&["--crash-enum", "--seeds", "50"])).unwrap();
        assert!(o.crash_enum);
        assert_eq!(o.crash_seeds, 50);
        // --crash-enum alone selects no figures: --all must stay pristine.
        assert!(o.wanted.is_empty());
    }
}
