//! # bio-bench — experiment harness
//!
//! Regenerates every table and figure of "Barrier-Enabled IO Stack for
//! Flash Storage" (FAST 2018). The [`experiments`] module holds one runner
//! per table/figure; the `figures` binary prints them
//! (`cargo run -p bio-bench --release --bin figures -- --all`), and the
//! criterion benches reuse the same configurations for micro-timings.
//!
//! Absolute numbers come from a simulator, not the authors' testbed; the
//! claims to check are the *shapes* — who wins, by what factor, where the
//! crossovers sit. EXPERIMENTS.md records paper-vs-measured for each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod crash;
pub mod experiments;
mod grid;

pub use grid::{cells_run, default_jobs, set_default_jobs, ExperimentGrid};

use barrier_io::{IoStack, StackConfig, StackReport, Workload};
use bio_sim::SimDuration;

/// Runs `threads` copies of a workload until done (capped), measuring from
/// after `warmup`. One shared file is pre-created as `FileRef::Global(0)`.
/// Returns the report.
pub fn run_to_completion(
    cfg: StackConfig,
    mut mk: impl FnMut(usize) -> Box<dyn Workload>,
    threads: usize,
    warmup: SimDuration,
    cap: SimDuration,
) -> StackReport {
    let mut stack = IoStack::new(cfg);
    stack.create_global_file();
    for i in 0..threads {
        let w = mk(i);
        stack.add_thread(w);
    }
    stack.run_for(warmup);
    stack.start_measuring();
    stack.run_until_done(cap);
    stack.report()
}

/// Runs a continuous workload for a fixed measured window after warm-up.
pub fn run_windowed(
    cfg: StackConfig,
    mut mk: impl FnMut(usize) -> Box<dyn Workload>,
    threads: usize,
    warmup: SimDuration,
    window: SimDuration,
) -> StackReport {
    let mut stack = IoStack::new(cfg);
    stack.create_global_file();
    for i in 0..threads {
        stack.add_thread(mk(i));
    }
    stack.run_for(warmup);
    stack.start_measuring();
    stack.run_for(window);
    stack.report()
}

/// Like [`run_windowed`] but hands back the stack too (for queue-depth
/// series and crash injection).
pub fn run_windowed_stack(
    cfg: StackConfig,
    mut mk: impl FnMut(usize) -> Box<dyn Workload>,
    threads: usize,
    warmup: SimDuration,
    window: SimDuration,
) -> (IoStack, StackReport) {
    let mut stack = IoStack::new(cfg);
    stack.create_global_file();
    for i in 0..threads {
        stack.add_thread(mk(i));
    }
    stack.run_for(warmup);
    stack.start_measuring();
    stack.run_for(window);
    let report = stack.report();
    (stack, report)
}

/// Pretty-prints a results table with a title.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}
