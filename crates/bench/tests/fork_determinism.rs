//! Fork correctness: `IoStack::fork()` must be a perfect snapshot.
//!
//! Two properties back the crash enumerator:
//!
//! 1. **Bit-identity** — a forked stack, run to completion, produces
//!    exactly the state an uninterrupted run produces (256 randomized
//!    fork points over three stack presets).
//! 2. **No aliasing** — the fork and the original share no pooled
//!    buffers (Txn arena, journal waiter lists, payload vecs, device tag
//!    buffers): running either one must not perturb the other.

use barrier_io::{DeviceProfile, FileRef, IoStack, StackConfig, TxnRecord};
use bio_sim::{SimDuration, SimTime};
use bio_workloads::{RandWrite, SyncMode, WriteMode};

/// Common absolute horizon every run is driven to before fingerprinting:
/// comfortably past trace completion *and* trailing checkpoint writes, so
/// the observation point is identical no matter how a run was stepped.
const HORIZON: SimDuration = SimDuration::from_millis(20);

fn run_to_horizon(stack: &mut IoStack) {
    let elapsed = stack.now().saturating_since(SimTime::ZERO);
    stack.run_for(HORIZON.saturating_sub(elapsed));
}

fn mk_stack(case: u64) -> IoStack {
    let (cfg, sync) = match case % 3 {
        0 => (StackConfig::ext4_dr(DeviceProfile::ufs()), SyncMode::Fsync),
        1 => (StackConfig::bfs(DeviceProfile::ufs()), SyncMode::Fsync),
        _ => (
            StackConfig::bfs(DeviceProfile::ufs()).ordering_only(),
            SyncMode::Fbarrier,
        ),
    };
    let mut cfg = cfg.with_seed(case).with_history();
    cfg.fs.timer_tick = SimDuration::from_micros(1);
    let mut stack = IoStack::new(cfg);
    let f = stack.create_global_file();
    stack.add_thread(Box::new(RandWrite::new(
        FileRef::Global(f),
        32,
        WriteMode::SyncEach(sync),
        12,
    )));
    stack
}

/// Everything observable at end of run: txn count, journal ground truth,
/// and the exact durable surface of every device.
type Fingerprint = (u64, Vec<TxnRecord>, Vec<Vec<(u64, u64)>>);

fn fingerprint(stack: &IoStack) -> Fingerprint {
    let images = stack
        .devices()
        .iter()
        .map(|d| {
            let mut v: Vec<(u64, u64)> = d.final_image().iter().map(|(l, t)| (l.0, t.0)).collect();
            v.sort_unstable();
            v
        })
        .collect();
    (
        stack.report().run.txns,
        stack.fs().records().to_vec(),
        images,
    )
}

#[test]
fn fork_then_run_is_bit_identical_256_cases() {
    for case in 0u64..256 {
        let mut baseline = mk_stack(case);
        run_to_horizon(&mut baseline);
        let expect = fingerprint(&baseline);

        let mut original = mk_stack(case);
        // Scatter fork points across the whole run (golden-ratio hash).
        let fork_step = (case.wrapping_mul(2_654_435_761) % 1_500) as usize;
        for _ in 0..fork_step {
            if !original.step() {
                break;
            }
        }
        let mut fork = original.fork();

        // Run the FORK to the horizon first: if it aliased any pooled
        // buffer, finishing it would corrupt the original below.
        run_to_horizon(&mut fork);
        assert_eq!(
            fingerprint(&fork),
            expect,
            "fork continuation diverged (case {case}, fork step {fork_step})"
        );
        run_to_horizon(&mut original);
        assert_eq!(
            fingerprint(&original),
            expect,
            "original diverged after its fork ran (case {case}, fork step {fork_step})"
        );
    }
}

#[test]
fn interleaved_fork_and_original_share_no_pooled_state() {
    let mut baseline = mk_stack(7);
    run_to_horizon(&mut baseline);
    let expect = fingerprint(&baseline);

    // Fork mid-commit, while the Txn arena, waiter lists and payload
    // pools are all hot.
    let mut original = mk_stack(7);
    let mut guard = 0u64;
    while original.fs().records().len() < 3 && original.step() {
        guard += 1;
        assert!(guard < 1_000_000, "trace never reached 3 commits");
    }
    let mut fork = original.fork();

    // Strict interleaving maximizes the window for cross-talk through
    // any accidentally shared allocation.
    for _ in 0..1_000 {
        original.step();
        fork.step();
    }
    run_to_horizon(&mut original);
    run_to_horizon(&mut fork);
    assert_eq!(fingerprint(&original), expect, "original corrupted");
    assert_eq!(fingerprint(&fork), expect, "fork corrupted");
}
