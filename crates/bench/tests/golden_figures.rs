//! Golden-output equivalence for the multi-queue refactor.
//!
//! The 1×1 topology must be a perfect pass-through: the `figures` binary
//! output is compared byte-for-byte against a fixture captured from the
//! pre-refactor stack (stdout only; the `[grid]` wall-clock summary goes
//! to stderr precisely so this diff stays clean). The new fig17 grid must
//! additionally be independent of the worker-pool width.

use std::process::Command;

fn figures(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        .output()
        .expect("figures binary runs");
    assert!(
        out.status.success(),
        "figures {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn one_by_one_topology_matches_pre_refactor_golden_output() {
    let got = figures(&[
        "--fig", "8", "--fig", "12", "--table", "1", "--scale", "1", "--jobs", "1",
    ]);
    let want = include_str!("golden/figures_1x1.txt");
    assert_eq!(
        got, want,
        "1x1 figures output drifted from the pre-refactor golden fixture"
    );
}

#[test]
fn fig17_is_deterministic_across_worker_pool_widths() {
    let serial = figures(&["--fig", "17", "--scale", "1", "--jobs", "1"]);
    let parallel = figures(&["--fig", "17", "--scale", "1", "--jobs", "8"]);
    assert_eq!(serial, parallel, "fig17 must not depend on --jobs");
    assert!(serial.contains("Fig 17"), "fig17 table missing: {serial:?}");
}
