//! Determinism regression tests for the parallel experiment grid: running
//! the same `(StackConfig, seed)` cells serially or on the worker pool
//! must produce identical `StackReport`s, and repeated serial runs must be
//! bit-identical. The simulator's reproducibility story depends on it.

use barrier_io::{DeviceProfile, FileRef, SimDuration, StackConfig, Workload};
use bio_bench::{run_windowed, ExperimentGrid};
use bio_workloads::{RandWrite, SyncMode, WriteMode};

/// One grid over the experiment matrix: device x mode x seed. Each cell
/// runs a real stack and returns the full report, formatted (StackReport
/// holds floats and has no Eq; its Debug form captures every field).
fn report_grid() -> ExperimentGrid<String> {
    let mut grid = ExperimentGrid::new();
    for (di, dev) in [DeviceProfile::ufs(), DeviceProfile::plain_ssd()]
        .into_iter()
        .enumerate()
    {
        for seed in [7u64, 21] {
            for (label, cfg) in [
                ("ext4", StackConfig::ext4_dr(dev.clone())),
                ("bfs", StackConfig::bfs(dev.clone())),
            ] {
                let cfg = cfg.with_seed(seed);
                grid.push(format!("{label}/dev{di}/seed{seed}"), move || {
                    let report = run_windowed(
                        cfg,
                        |_| {
                            Box::new(RandWrite::new(
                                FileRef::Global(0),
                                256,
                                WriteMode::SyncEach(SyncMode::Fdatasync),
                                u64::MAX / 2,
                            )) as Box<dyn Workload>
                        },
                        2,
                        SimDuration::from_millis(5),
                        SimDuration::from_millis(20),
                    );
                    format!("{report:?}")
                });
            }
        }
    }
    grid
}

#[test]
fn parallel_grid_matches_serial() {
    let serial = report_grid().run_with(1);
    let parallel = report_grid().run_with(4);
    assert_eq!(serial.len(), 8);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "cell {i}: parallel run diverged from serial");
    }
}

#[test]
fn serial_reruns_are_bit_identical() {
    let a = report_grid().run_with(1);
    let b = report_grid().run_with(1);
    assert_eq!(a, b, "two serial runs of the same grid diverged");
}
