//! Property test: zero-clone/delta capture is bit-identical to the
//! fork-based reference path.
//!
//! For random trace seeds across the differential stacks (all three
//! filesystem disciplines, at 1q×1dev and 2q×2dev), the full sequence of
//! [`CrashPoint`]s captured through the delta cursor must equal — field
//! for field — the sequence captured by deep-forking the stack at every
//! commit with `BIO_FORK_CAPTURE`-style capture.

use barrier_io::{DeviceProfile, StackConfig, Topology};
use bio_bench::crash::{capture_points, CaptureMode};
use bio_workloads::SyncMode;
use proptest::prelude::*;

/// The six differential cells: (config, sync flavour).
fn cell(stack: u8) -> (StackConfig, SyncMode) {
    let mq = |cfg: StackConfig| cfg.with_topology(Topology::new(2, 2, 16));
    match stack {
        0 => (
            StackConfig::ext4_dr(DeviceProfile::ufs()).with_history(),
            SyncMode::Fsync,
        ),
        1 => (
            StackConfig::bfs(DeviceProfile::ufs()).with_history(),
            SyncMode::Fsync,
        ),
        2 => (
            StackConfig::bfs(DeviceProfile::ufs())
                .ordering_only()
                .with_history(),
            SyncMode::Fbarrier,
        ),
        3 => (
            mq(StackConfig::ext4_dr(DeviceProfile::ufs()).with_history()),
            SyncMode::Fsync,
        ),
        4 => (
            mq(StackConfig::bfs(DeviceProfile::ufs()).with_history()),
            SyncMode::Fsync,
        ),
        _ => (
            mq(StackConfig::bfs(DeviceProfile::ufs())
                .ordering_only()
                .with_history()),
            SyncMode::Fbarrier,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delta_capture_equals_fork_capture(
        seed in 0u64..10_000,
        stack in 0u8..6,
        probe in 0usize..1024,
    ) {
        let (cfg, sync) = cell(stack);
        let delta = capture_points(cfg.clone(), sync, seed, CaptureMode::Delta);
        let fork = capture_points(cfg, sync, seed, CaptureMode::Fork);
        prop_assert!(!delta.is_empty(), "trace produced no capture points");
        prop_assert_eq!(delta.len(), fork.len());
        // Spot-check a random fork point first (sharper failure output),
        // then require the full sequences to match.
        let i = probe % delta.len();
        prop_assert_eq!(&delta[i], &fork[i]);
        prop_assert_eq!(delta, fork);
    }
}
