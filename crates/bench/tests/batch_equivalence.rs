//! Cohort-drained batch execution must be unobservable in results.
//!
//! The `IoStack` driver drains same-timestamp event cohorts and routes
//! them per destination layer instead of popping one event at a time;
//! `BIO_SINGLE_STEP=1` forces the cohort size to 1, which reduces the
//! driver to the pre-batching single-pop loop. Running the `figures`
//! binary both ways and comparing stdout byte-for-byte pins down the
//! bit-exactness claim end to end — every simulated figure and table,
//! not just unit-level invariants.

use std::process::Command;

fn figures(args: &[&str], single_step: bool) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_figures"));
    cmd.args(args);
    if single_step {
        cmd.env("BIO_SINGLE_STEP", "1");
    } else {
        cmd.env_remove("BIO_SINGLE_STEP");
    }
    let out = cmd.output().expect("figures binary runs");
    assert!(
        out.status.success(),
        "figures {args:?} (single_step={single_step}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn batched_figures_match_single_step_byte_for_byte() {
    let args = &["--all", "--scale", "1", "--seeds", "2", "--jobs", "1"];
    let batched = figures(args, false);
    let single = figures(args, true);
    assert_eq!(
        batched, single,
        "cohort-drained execution diverged from single-step execution"
    );
    // Guard against a silently empty run proving nothing.
    assert!(
        batched.contains("Fig"),
        "figures output missing: {batched:?}"
    );
}
