//! Criterion micro-benchmarks of the FTL translation map — the per-block
//! lookup/insert path every destaged page goes through. Covers append
//! churn over a hot working set (map insert + old-version invalidation +
//! GC), overwrite-heavy steady state, and read lookups.

use bio_flash::{BlockTag, Ftl, Lba};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Sequential fill then round-robin overwrite: the log-structured steady
/// state. `ops` appends over a `working_set`-LBA span on a device with
/// `segments x pages` geometry (GC runs once the free list dips under the
/// watermark).
fn append_churn(segments: usize, pages: usize, working_set: u64, ops: u64) -> u64 {
    let mut f = Ftl::new(segments, pages, 0.25);
    let mut acc = 0u64;
    for i in 0..ops {
        let lba = Lba(i % working_set);
        let (loc, _) = f.append(lba, BlockTag(i + 1));
        acc = acc.wrapping_add(loc.slot as u64);
    }
    acc
}

/// Pure lookup over a populated map: the read-path hit check.
fn lookup_hits(working_set: u64, ops: u64) -> u64 {
    let mut f = Ftl::new(64, 512, 0.1);
    for i in 0..working_set {
        f.append(Lba(i), BlockTag(i + 1));
    }
    let mut acc = 0u64;
    for i in 0..ops {
        // Stride walk so the access pattern is not trivially cached.
        let lba = Lba((i * 7) % working_set);
        if let Some(loc) = f.lookup(lba) {
            acc = acc.wrapping_add(loc.segment as u64);
        }
        acc = acc.wrapping_add(f.tag_at(lba).map_or(0, |t| t.0));
    }
    acc
}

fn bench_ftl_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftl_map");
    g.bench_function("append_churn_4k_lbas_100k_ops", |b| {
        b.iter(|| append_churn(64, 256, black_box(4_096), 100_000))
    });
    g.bench_function("append_churn_overwrite_hot_100k_ops", |b| {
        b.iter(|| append_churn(64, 256, black_box(512), 100_000))
    });
    g.bench_function("lookup_hits_16k_lbas_200k_ops", |b| {
        b.iter(|| lookup_hits(black_box(16_384), 200_000))
    });
    g.finish();
}

criterion_group!(benches, bench_ftl_map);
criterion_main!(benches);
