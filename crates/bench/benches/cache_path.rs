//! Criterion micro-benchmarks of the writeback cache — the structure every
//! transferred block enters and every destage drains. Covers the
//! insert→candidates→mark→complete cycle (the device's per-block hot
//! loop), same-epoch coalescing, and candidate scans on a full cache.

use bio_flash::{BlockTag, Lba, WritebackCache};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Steady-state destage cycle: keep `depth` entries resident; each round
/// inserts a batch (with a barrier closing the epoch), scans candidates,
/// and completes them in transfer order — the per-block path of
/// `Device::destage_pump` / `on_program_done`.
fn insert_destage_cycle(depth: u64, rounds: u64) -> u64 {
    let mut c = WritebackCache::new(depth as usize * 2);
    let mut acc = 0u64;
    let mut tag = 1u64;
    for r in 0..rounds {
        for i in 0..depth {
            let barrier = i + 1 == depth;
            let seq = c.insert(Lba((r * depth + i) % (depth * 4)), BlockTag(tag), barrier);
            tag += 1;
            acc = acc.wrapping_add(seq);
        }
        let cands = c.destage_candidates(None, false);
        for seq in cands {
            c.mark_destaging(seq).expect("candidate is dirty");
        }
        for seq in c.pending_seqs() {
            let e = c.complete(seq).expect("pending entry is resident");
            acc = acc.wrapping_add(e.tag.0);
        }
    }
    acc
}

/// Same-epoch coalescing: repeated overwrites of a small hot set, the
/// page-cache-absorbs-rewrites path (latest-index lookup + in-place tag
/// update, no new version).
fn coalesce_hot(hot: u64, ops: u64) -> u64 {
    let mut c = WritebackCache::new(hot as usize * 2);
    let mut acc = 0u64;
    for i in 0..ops {
        let seq = c.insert(Lba(i % hot), BlockTag(i + 1), false);
        acc = acc.wrapping_add(seq);
    }
    acc
}

/// Candidate scans over a populated cache with per-LBA ordering (the
/// in-place engines' destage pick), plus epoch-bounded scans.
fn candidate_scans(entries: u64, scans: u64) -> u64 {
    let mut c = WritebackCache::new(entries as usize);
    for i in 0..entries {
        // Two versions per LBA across epochs: half the entries are held
        // back by per-LBA ordering.
        let barrier = i % 8 == 7;
        c.insert(Lba(i / 2), BlockTag(i + 1), barrier);
    }
    let mut acc = 0u64;
    for _ in 0..scans {
        acc = acc.wrapping_add(c.destage_candidates(None, true).len() as u64);
        acc = acc.wrapping_add(c.destage_candidates(c.min_pending_epoch(), true).len() as u64);
    }
    acc
}

fn bench_cache_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_path");
    g.bench_function("insert_destage_cycle_256x400", |b| {
        b.iter(|| insert_destage_cycle(black_box(256), 400))
    });
    g.bench_function("coalesce_hot_64_lbas_200k_ops", |b| {
        b.iter(|| coalesce_hot(black_box(64), 200_000))
    });
    g.bench_function("candidate_scans_4k_entries_100", |b| {
        b.iter(|| candidate_scans(black_box(4_096), 100))
    });
    g.finish();
}

criterion_group!(benches, bench_cache_path);
criterion_main!(benches);
