//! Criterion micro-benchmarks of the simulation event queue — the hot
//! path every layer of the stack drains. Covers steady-state push/pop at
//! small (1k) and large (100k) queue populations, plus a same-instant
//! burst (the FIFO bucket-drain path).

use bio_sim::{EventQueue, SimDuration, SimTime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Steady-state churn: keep `depth` events queued while popping and
/// re-pushing `ops` times, with a spread of near-future delays (the
/// simulator's DMA/program/timer mix).
fn churn(depth: u64, ops: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    for i in 0..depth {
        q.push(SimTime::from_nanos(1 + i * 37 % 50_000), i);
    }
    let mut acc = 0u64;
    for i in 0..ops {
        let (_, ev) = q.pop().expect("queue stays populated");
        acc = acc.wrapping_add(ev);
        // Re-schedule with a deterministic micro-scale delay pattern.
        let delay = SimDuration::from_nanos(200 + (i * 97) % 30_000);
        q.push_after(delay, ev);
    }
    acc
}

/// Fill-then-drain: push `n` events with spread timestamps, then pop all.
fn fill_drain(n: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    for i in 0..n {
        q.push(SimTime::from_nanos((i * 2_654_435_761) % 80_000_000), i);
    }
    let mut acc = 0u64;
    while let Some((_, ev)) = q.pop() {
        acc = acc.wrapping_add(ev);
    }
    acc
}

/// Same-instant burst: `n` events at one timestamp, drained in FIFO order
/// via `pop_batch`.
fn burst_batch(n: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let t = SimTime::from_micros(5);
    for i in 0..n {
        q.push(t, i);
    }
    let mut out = Vec::new();
    let mut acc = 0u64;
    while q.pop_batch(&mut out, 256) > 0 {
        for (_, ev) in out.drain(..) {
            acc = acc.wrapping_add(ev);
        }
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("churn_1k_queued_100k_ops", |b| {
        b.iter(|| churn(black_box(1_000), 100_000))
    });
    g.bench_function("churn_100k_queued_100k_ops", |b| {
        b.iter(|| churn(black_box(100_000), 100_000))
    });
    g.bench_function("fill_drain_100k", |b| {
        b.iter(|| fill_drain(black_box(100_000)))
    });
    g.bench_function("same_instant_burst_10k", |b| {
        b.iter(|| burst_batch(black_box(10_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
