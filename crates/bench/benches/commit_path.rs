//! Criterion micro-benchmarks of the journal-commit paths: the per-fsync
//! cost on each stack configuration (simulated time is the metric that
//! matters for the paper; this measures simulator throughput so
//! regressions in the hot paths are caught).

use barrier_io::{DeviceProfile, IoStack, SimDuration, StackConfig, Workload};
use bio_workloads::{Dwsl, SyncMode, Varmail};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_fsyncs(cfg: StackConfig, n: u64) -> u64 {
    let mut stack = IoStack::new(cfg);
    let mut holder = Some(Box::new(Dwsl::new(SyncMode::Fsync, n)) as Box<dyn Workload>);
    stack.add_thread(holder.take().expect("workload"));
    stack.run_until_done(SimDuration::from_secs(3600));
    stack.device_at(0).stats().blocks_written
}

/// Many-file transactions: a *buffered* mail loop over a wide pool — no
/// per-iteration sync, so the running transaction accumulates hundreds of
/// distinct inode buffers between timer-tick commits. This is the
/// workload where `Txn::add_buffer`'s dedup cost (linear scan vs
/// sorted-index binary search) shows.
fn run_many_file_commits(cfg: StackConfig) -> u64 {
    let mut stack = IoStack::new(cfg);
    let mut holder = Some(Box::new(Varmail::new(SyncMode::None, 6_000, 512)) as Box<dyn Workload>);
    stack.add_thread(holder.take().expect("workload"));
    stack.run_until_done(SimDuration::from_secs(3600));
    stack.device_at(0).stats().blocks_written
}

fn bench_commit_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_path");
    g.sample_size(10);
    g.bench_function("ext4_dr_100_fsyncs_plain_ssd", |b| {
        b.iter(|| run_fsyncs(StackConfig::ext4_dr(DeviceProfile::plain_ssd()), 100))
    });
    g.bench_function("bfs_100_fsyncs_plain_ssd", |b| {
        b.iter(|| run_fsyncs(StackConfig::bfs(DeviceProfile::plain_ssd()), 100))
    });
    g.bench_function("bfs_100_fsyncs_ufs", |b| {
        b.iter(|| run_fsyncs(StackConfig::bfs(DeviceProfile::ufs()), 100))
    });
    g.bench_function("bfs_many_file_txn_plain_ssd", |b| {
        b.iter(|| run_many_file_commits(StackConfig::bfs(DeviceProfile::plain_ssd())))
    });
    g.finish();
}

criterion_group!(benches, bench_commit_paths);
criterion_main!(benches);
