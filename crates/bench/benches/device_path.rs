//! Criterion micro-benchmarks of the device model: the write-submit →
//! DMA → cache → program pipeline.

use bio_flash::{BlockTag, CmdId, Command, DevAction, Device, DeviceProfile, Lba, WriteFlags};
use bio_sim::EventQueue;
use criterion::{criterion_group, criterion_main, Criterion};

fn submit_more(
    dev: &mut Device,
    q: &mut EventQueue<bio_flash::DevEvent>,
    next: &mut u64,
    n: u64,
    completed: &mut u64,
) {
    while *next <= n && dev.can_accept() {
        let cmd = Command::write(
            CmdId(*next),
            Lba(*next % 4096),
            vec![BlockTag(*next)],
            WriteFlags::NONE,
        );
        let mut out = Vec::new();
        if dev.submit(cmd, q.now(), &mut out).is_err() {
            break;
        }
        for a in out {
            match a {
                DevAction::Complete(_) => *completed += 1,
                DevAction::After(d, ev) => q.push_after(d, ev),
            }
        }
        *next += 1;
    }
}

fn device_writes(n: u64) -> u64 {
    let mut dev = Device::new(DeviceProfile::plain_ssd(), 7);
    let mut q = EventQueue::new();
    let mut completed = 0u64;
    let mut next = 1u64;
    submit_more(&mut dev, &mut q, &mut next, n, &mut completed);
    while let Some((now, ev)) = q.pop() {
        let mut out = Vec::new();
        dev.handle(ev, now, &mut out);
        for a in out {
            match a {
                DevAction::Complete(_) => completed += 1,
                DevAction::After(d, e) => q.push_after(d, e),
            }
        }
        submit_more(&mut dev, &mut q, &mut next, n, &mut completed);
    }
    completed
}

fn bench_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_path");
    g.bench_function("write_pipeline_1k", |b| b.iter(|| device_writes(1000)));
    g.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
