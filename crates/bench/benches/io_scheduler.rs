//! Criterion micro-benchmarks of the epoch IO scheduler: enqueue/dequeue
//! with barrier reassignment in the hot path.

use bio_block::{BlockRequest, EpochScheduler, IoScheduler, NoopScheduler, ReqFlags, ReqId};
use bio_flash::{BlockTag, Lba};
use criterion::{criterion_group, criterion_main, Criterion};

fn epoch_roundtrip(n: u64) -> usize {
    let mut s = EpochScheduler::new(Box::new(NoopScheduler::new()));
    let mut dispatched = 0;
    for i in 0..n {
        let flags = if i % 4 == 3 {
            ReqFlags::BARRIER
        } else {
            ReqFlags::ORDERED
        };
        s.enqueue(BlockRequest::write(
            ReqId(i),
            Lba(i * 8),
            vec![BlockTag(i + 1)],
            flags,
        ));
        while let Some(m) = s.dequeue() {
            dispatched += m.ids.len();
        }
    }
    dispatched
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("io_scheduler");
    g.bench_function("epoch_enqueue_dequeue_1k", |b| {
        b.iter(|| epoch_roundtrip(1000))
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
