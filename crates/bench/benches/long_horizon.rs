//! Long-horizon macro-benchmark: wall-clock cost of one *simulated hour*
//! of steady-state OLTP and DWSL, on EXT4-DR and BFS-OD at the 1×1
//! topology.
//!
//! Every other bench in this suite measures a short window; this one
//! measures the regime the ROADMAP's traffic-engine and crash-enumeration
//! items live in, where per-event dispatch overhead and per-commit
//! allocation churn dominate. Both workloads run as rate-bounded clients
//! (`with_think`) against an hour-capacity device: a zero-latency sync
//! loop is not a meaningful hour-long workload — it would outgrow any
//! finite device's physical capacity within simulated minutes.
//!
//! The simulated window defaults to a full hour; CI and quick local runs
//! can shrink it with `LONG_HORIZON_SIM_SECS` (the reported number is
//! always wall-clock for the configured window).

use barrier_io::{DeviceProfile, FileRef, IoStack, StackConfig, Workload};
use bio_sim::SimDuration;
use bio_workloads::{Dwsl, OltpInsert, SyncMode};
use criterion::{criterion_group, criterion_main, Criterion};

/// Simulated seconds per sample (default: one hour).
fn sim_secs() -> u64 {
    std::env::var("LONG_HORIZON_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3600)
}

/// The paper's plain SSD geometry scaled to hour-long capacity (~32 GiB):
/// the stock 1 GiB lab geometry keeps GC experiments fast, but an hour of
/// steady appends needs a production-sized data region.
fn hour_device() -> DeviceProfile {
    let mut p = DeviceProfile::plain_ssd();
    p.segments = 16 * 1024;
    p
}

/// Per-transaction client latency for the DWSL appenders.
const DWSL_THINK: SimDuration = SimDuration::from_millis(5);
/// Per-transaction client latency for the OLTP client.
const OLTP_THINK: SimDuration = SimDuration::from_millis(10);
/// Binlog rotation bound (blocks): 1M × 4 KiB = 4 GiB of retained logs.
const BINLOG_BLOCKS: u64 = 1 << 20;

fn run_dwsl(cfg: StackConfig, sync: SyncMode, secs: u64) -> u64 {
    let mut stack = IoStack::new(cfg);
    stack.add_thread(Box::new(Dwsl::new(sync, u64::MAX).with_think(DWSL_THINK)));
    stack.run_for(SimDuration::from_secs(secs));
    stack.device_at(0).stats().blocks_written
}

fn run_oltp(cfg: StackConfig, sync: SyncMode, secs: u64) -> u64 {
    let mut stack = IoStack::new(cfg);
    let table = stack.create_global_file();
    let redo = stack.create_global_file();
    let binlog = stack.create_global_file();
    let w: Box<dyn Workload> = Box::new(
        OltpInsert::new(
            sync,
            FileRef::Global(table),
            FileRef::Global(redo),
            FileRef::Global(binlog),
            u64::MAX,
        )
        .with_binlog_blocks(BINLOG_BLOCKS)
        .with_think(OLTP_THINK),
    );
    stack.add_thread(w);
    stack.run_for(SimDuration::from_secs(secs));
    stack.device_at(0).stats().blocks_written
}

fn bench(c: &mut Criterion) {
    let secs = sim_secs();
    let mut g = c.benchmark_group("long_horizon");
    g.sample_size(2);
    g.bench_function("dwsl_ext4_dr_plain_ssd", |b| {
        b.iter(|| run_dwsl(StackConfig::ext4_dr(hour_device()), SyncMode::Fsync, secs))
    });
    g.bench_function("dwsl_bfs_od_plain_ssd", |b| {
        b.iter(|| {
            run_dwsl(
                StackConfig::bfs(hour_device()).ordering_only(),
                SyncMode::Fbarrier,
                secs,
            )
        })
    });
    g.bench_function("oltp_ext4_dr_plain_ssd", |b| {
        b.iter(|| run_oltp(StackConfig::ext4_dr(hour_device()), SyncMode::Fsync, secs))
    });
    g.bench_function("oltp_bfs_od_plain_ssd", |b| {
        b.iter(|| {
            run_oltp(
                StackConfig::bfs(hour_device()).ordering_only(),
                SyncMode::Fbarrier,
                secs,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
