//! Full-stack behaviour tests: the paper's qualitative claims, verified
//! end to end on the assembled simulator.

use barrier_io::{
    DeviceProfile, FileRef, FnWorkload, IoStack, Op, OpKind, ScriptWorkload, SimDuration,
    StackConfig,
};

fn write_fsync_script(file: FileRef, n: u64) -> ScriptWorkload {
    ScriptWorkload::repeat(
        vec![
            Op::Write {
                file,
                offset: 0,
                blocks: 1,
            },
            Op::Fsync { file },
            Op::TxnMark,
        ],
        n,
    )
}

/// Runs `write(); fsync()` transactions and returns (mean fsync latency
/// in µs, switches per fsync).
fn fsync_profile(cfg: StackConfig, n: u64) -> (f64, f64) {
    let mut stack = IoStack::new(cfg);
    let f = stack.create_global_file();
    stack.add_thread(Box::new(write_fsync_script(FileRef::Global(f), n)));
    stack.start_measuring();
    assert!(
        stack.run_until_done(SimDuration::from_secs(600)),
        "workload did not finish"
    );
    let report = stack.report();
    let fsync = report.run.op(OpKind::Fsync).expect("fsync ran");
    (fsync.latency.mean.as_micros_f64(), fsync.switches_per_op)
}

#[test]
fn barrierfs_fsync_is_faster_than_ext4_everywhere() {
    // Force the full journal-commit path (tiny timestamp granularity) so
    // the dual-mode-vs-legacy commit pipelines are what is compared.
    for device in [
        DeviceProfile::ufs(),
        DeviceProfile::plain_ssd(),
        DeviceProfile::supercap_ssd(),
    ] {
        let mut e = StackConfig::ext4_dr(device.clone());
        e.fs.timer_tick = SimDuration::from_micros(1);
        let mut b = StackConfig::bfs(device.clone());
        b.fs.timer_tick = SimDuration::from_micros(1);
        let (ext4, _) = fsync_profile(e, 300);
        let (bfs, _) = fsync_profile(b, 300);
        assert!(
            bfs < ext4,
            "{}: BFS fsync {bfs:.0}us should beat EXT4 {ext4:.0}us",
            device.name
        );
    }
}

#[test]
fn ext4_fsync_costs_about_two_context_switches() {
    let (_, switches) = fsync_profile(StackConfig::ext4_dr(DeviceProfile::ufs()), 300);
    assert!(
        (1.5..=2.5).contains(&switches),
        "EXT4-DR switches/op = {switches}"
    );
}

#[test]
fn fdatabarrier_never_blocks() {
    let mut stack = IoStack::new(StackConfig::bfs(DeviceProfile::plain_ssd()));
    let f = stack.create_global_file();
    stack.add_thread(Box::new(ScriptWorkload::repeat(
        vec![
            Op::Write {
                file: FileRef::Global(f),
                offset: 0,
                blocks: 1,
            },
            Op::Fdatabarrier {
                file: FileRef::Global(f),
            },
        ],
        500,
    )));
    stack.start_measuring();
    assert!(stack.run_until_done(SimDuration::from_secs(60)));
    let report = stack.report();
    let fdb = report.run.op(OpKind::Fdatabarrier).expect("ran");
    assert_eq!(fdb.count, 500);
    assert_eq!(
        fdb.switches_per_op, 0.0,
        "fdatabarrier must not sleep (it returned Done every time)"
    );
    // And it is nearly free: mean latency is zero (no blocking).
    assert_eq!(fdb.latency.mean.as_nanos(), 0);
}

#[test]
fn barrier_write_throughput_beats_wait_on_transfer() {
    // Fig 9's B-vs-XnF shape: ordering via fdatabarrier outruns ordering
    // via fdatasync by a wide margin on every device.
    let script_barrier = |f: FileRef| {
        ScriptWorkload::repeat(
            vec![
                Op::Write {
                    file: f,
                    offset: 0,
                    blocks: 1,
                },
                Op::Fdatabarrier { file: f },
            ],
            400,
        )
    };
    let script_flush = |f: FileRef| {
        ScriptWorkload::repeat(
            vec![
                Op::Write {
                    file: f,
                    offset: 0,
                    blocks: 1,
                },
                Op::Fdatasync { file: f },
            ],
            400,
        )
    };
    for device in [DeviceProfile::ufs(), DeviceProfile::plain_ssd()] {
        let mut barrier = IoStack::new(StackConfig::bfs(device.clone()));
        let f = barrier.create_global_file();
        barrier.add_thread(Box::new(script_barrier(FileRef::Global(f))));
        barrier.start_measuring();
        assert!(barrier.run_until_done(SimDuration::from_secs(600)));
        let t_barrier = barrier.now();

        let mut flush = IoStack::new(StackConfig::ext4_dr(device.clone()));
        let f = flush.create_global_file();
        flush.add_thread(Box::new(script_flush(FileRef::Global(f))));
        flush.start_measuring();
        assert!(flush.run_until_done(SimDuration::from_secs(600)));
        let t_flush = flush.now();

        assert!(
            t_barrier.as_nanos() * 2 < t_flush.as_nanos(),
            "{}: barrier run {} should be >2x faster than flush run {}",
            device.name,
            t_barrier,
            t_flush
        );
    }
}

#[test]
fn dual_mode_journaling_overlaps_commits() {
    // Threads fbarrier fresh files (no hot inode buffers, so no page
    // conflicts): BarrierFS must keep more than one transaction in the
    // committing list at some point — the "more than one committing
    // transactions in flight" property of §4.2.
    let mut stack = IoStack::new(StackConfig::bfs(DeviceProfile::plain_ssd()));
    for _ in 0..8 {
        let script = vec![
            Op::Create { slot: 0 },
            Op::Write {
                file: FileRef::Slot(0),
                offset: 0,
                blocks: 1,
            },
            Op::Fbarrier {
                file: FileRef::Slot(0),
            },
        ];
        stack.add_thread(Box::new(ScriptWorkload::repeat(script, 50)));
    }
    let mut max_committing = 0;
    // Step manually so we can observe the committing list.
    let deadline = SimDuration::from_secs(120);
    stack.start_measuring();
    let start = stack.now();
    while stack.now().saturating_since(start) < deadline {
        if !stack.step() {
            break;
        }
        max_committing = max_committing.max(stack.fs().committing_count());
    }
    assert!(
        max_committing > 1,
        "BarrierFS should overlap commits (max committing = {max_committing})"
    );
}

#[test]
fn barrier_stack_survives_random_crashes() {
    for seed in 0..10u64 {
        let mut cfg = StackConfig::bfs(DeviceProfile::ufs())
            .with_seed(seed)
            .with_history();
        cfg.fs.timer_tick = SimDuration::from_micros(1); // force full commits
        let mut stack = IoStack::new(cfg);
        let f = stack.create_global_file();
        stack.add_thread(Box::new(ScriptWorkload::repeat(
            vec![
                Op::Write {
                    file: FileRef::Global(f),
                    offset: 0,
                    blocks: 2,
                },
                Op::Fbarrier {
                    file: FileRef::Global(f),
                },
            ],
            50,
        )));
        // Crash mid-run at a seed-dependent point.
        stack.run_for(SimDuration::from_millis(5 + seed * 7));
        let crash = stack.crash();
        assert!(
            crash.fs_violations.is_empty(),
            "seed {seed}: BarrierFS violated crash consistency: {:?}",
            crash.fs_violations
        );
        assert!(
            crash.epoch_violations.is_empty(),
            "seed {seed}: device violated epoch order"
        );
    }
}

#[test]
fn nobarrier_on_orderless_device_violates_ordering() {
    // EXT4-OD on a device without barrier support: some crash must show a
    // commit-order or torn-transaction violation (the risk the paper's
    // stack eliminates).
    let mut violated = false;
    for seed in 0..30u64 {
        let mut device =
            DeviceProfile::ufs().with_barrier_mode(barrier_io::BarrierMode::Unsupported);
        device.cache_blocks = 48; // keep the destage engine busy mid-run
        let mut cfg = StackConfig::ext4_od(device).with_seed(seed);
        cfg.fs.timer_tick = SimDuration::from_micros(1);
        let mut stack = IoStack::new(cfg);
        let f = stack.create_global_file();
        stack.add_thread(Box::new(ScriptWorkload::repeat(
            vec![
                Op::Write {
                    file: FileRef::Global(f),
                    offset: seed * 8, // fresh blocks each seed: no coalescing
                    blocks: 4,
                },
                Op::Fsync {
                    file: FileRef::Global(f),
                },
            ],
            80,
        )));
        stack.run_for(SimDuration::from_millis(4 + seed * 3));
        let crash = stack.crash();
        if !crash.fs_violations.is_empty() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "nobarrier on an orderless device never violated consistency in 30 crashes"
    );
}

#[test]
fn ext4_full_flush_is_crash_consistent() {
    for seed in 0..8u64 {
        let mut cfg = StackConfig::ext4_dr(DeviceProfile::ufs()).with_seed(seed);
        cfg.fs.timer_tick = SimDuration::from_micros(1);
        let mut stack = IoStack::new(cfg);
        let f = stack.create_global_file();
        stack.add_thread(Box::new(write_fsync_script(FileRef::Global(f), 50)));
        stack.run_for(SimDuration::from_millis(5 + seed * 11));
        let crash = stack.crash();
        assert!(
            crash.fs_violations.is_empty(),
            "seed {seed}: EXT4 full flush violated: {:?}",
            crash.fs_violations
        );
    }
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| -> (u64, u64) {
        let mut stack = IoStack::new(StackConfig::bfs(DeviceProfile::plain_ssd()).with_seed(seed));
        let f = stack.create_global_file();
        stack.add_thread(Box::new(write_fsync_script(FileRef::Global(f), 100)));
        stack.run_until_done(SimDuration::from_secs(120));
        (
            stack.now().as_nanos(),
            stack.device_at(0).stats().blocks_written,
        )
    };
    assert_eq!(run(1), run(1), "same seed must reproduce exactly");
    assert_ne!(run(1), run(2), "different seeds should differ");
}

#[test]
fn workload_closure_api_works() {
    let mut stack = IoStack::new(StackConfig::ext4_dr(DeviceProfile::supercap_ssd()));
    let f = stack.create_global_file();
    let mut left = 50u64;
    stack.add_thread(Box::new(FnWorkload(move |rng: &mut bio_sim::SimRng| {
        if left == 0 {
            return None;
        }
        left -= 1;
        Some(if left % 2 == 0 {
            Op::Write {
                file: FileRef::Global(f),
                offset: rng.below(64),
                blocks: 1,
            }
        } else {
            Op::Fdatasync {
                file: FileRef::Global(f),
            }
        })
    })));
    assert!(stack.run_until_done(SimDuration::from_secs(60)));
    assert!(stack.device_at(0).stats().blocks_written > 0);
}
