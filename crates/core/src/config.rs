//! Stack configuration: which filesystem, scheduler, dispatch mode and
//! device make up one experiment cell.
//!
//! The paper's experiment matrix is spanned by presets:
//!
//! | Label | Preset | Meaning |
//! |---|---|---|
//! | EXT4-DR | [`StackConfig::ext4_dr`] | stock EXT4, durability guarantee |
//! | EXT4-OD | [`StackConfig::ext4_od`] | EXT4 `nobarrier`, ordering only |
//! | BFS-DR | [`StackConfig::bfs`] + `fsync` | BarrierFS, durability guarantee |
//! | BFS-OD | [`StackConfig::bfs`] + `fbarrier` | BarrierFS, ordering only |
//! | OptFS | [`StackConfig::optfs`] | osync-based ordering |

use bio_block::{DispatchMode, SchedulerKind};
use bio_flash::DeviceProfile;
use bio_fs::{FsConfig, FsMode};
use bio_sim::SimDuration;

/// Complete configuration of one simulated IO stack.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Device parameters.
    pub device: DeviceProfile,
    /// Filesystem parameters.
    pub fs: FsConfig,
    /// Base IO scheduler (wrapped by the epoch scheduler).
    pub scheduler: SchedulerKind,
    /// Dispatch discipline.
    pub dispatch: DispatchMode,
    /// Master seed; every run with the same config and seed is identical.
    pub seed: u64,
    /// CPU cost charged per issued syscall (keeps zero-time loops honest).
    pub cpu_per_op: SimDuration,
    /// Block-layer congestion threshold (the kernel's `nr_requests`):
    /// threads stall while more requests than this are queued.
    pub congestion_limit: usize,
    /// Record device transfer history for crash audits (memory-heavy).
    pub record_history: bool,
}

impl StackConfig {
    /// Stock EXT4 with full flush/FUA commits (EXT4-DR rows; on a
    /// supercap device this is the "quick flush" variant).
    pub fn ext4_dr(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::Ext4, DispatchMode::Legacy)
    }

    /// EXT4 mounted `nobarrier` (EXT4-OD rows): ordering by transfer
    /// waits only, no flush anywhere.
    pub fn ext4_od(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::Ext4NoBarrier, DispatchMode::Legacy)
    }

    /// BarrierFS over the order-preserving block layer. Use `fsync` for
    /// BFS-DR and `fbarrier`/`fdatabarrier` for BFS-OD.
    pub fn bfs(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::BarrierFs, DispatchMode::OrderPreserving)
    }

    /// OptFS-style optimistic crash consistency (osync).
    pub fn optfs(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::OptFs, DispatchMode::Legacy)
    }

    fn base(device: DeviceProfile, mode: FsMode, dispatch: DispatchMode) -> StackConfig {
        StackConfig {
            device,
            fs: FsConfig::new(mode),
            scheduler: SchedulerKind::Elevator,
            dispatch,
            seed: 42,
            cpu_per_op: SimDuration::from_micros(2),
            congestion_limit: 128,
            record_history: false,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> StackConfig {
        self.seed = seed;
        self
    }

    /// Builder-style history recording (needed before calling
    /// crash-audit helpers).
    pub fn with_history(mut self) -> StackConfig {
        self.record_history = true;
        self
    }

    /// Short label for reports ("EXT4@plain-SSD" etc.).
    pub fn label(&self) -> String {
        let fs = match self.fs.mode {
            FsMode::Ext4 => "EXT4",
            FsMode::Ext4NoBarrier => "EXT4-nobarrier",
            FsMode::BarrierFs => "BarrierFS",
            FsMode::OptFs => "OptFS",
        };
        format!("{fs}@{}", self.device.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_pick_matching_modes() {
        let d = DeviceProfile::ufs();
        assert_eq!(StackConfig::ext4_dr(d.clone()).fs.mode, FsMode::Ext4);
        assert_eq!(
            StackConfig::ext4_od(d.clone()).fs.mode,
            FsMode::Ext4NoBarrier
        );
        let bfs = StackConfig::bfs(d.clone());
        assert_eq!(bfs.fs.mode, FsMode::BarrierFs);
        assert_eq!(bfs.dispatch, DispatchMode::OrderPreserving);
        assert_eq!(StackConfig::optfs(d).dispatch, DispatchMode::Legacy);
    }

    #[test]
    fn labels_are_informative() {
        let c = StackConfig::bfs(DeviceProfile::plain_ssd());
        assert_eq!(c.label(), "BarrierFS@plain-SSD");
    }

    #[test]
    fn builders() {
        let c = StackConfig::bfs(DeviceProfile::ufs())
            .with_seed(7)
            .with_history();
        assert_eq!(c.seed, 7);
        assert!(c.record_history);
    }
}
