//! Stack configuration: which filesystem, scheduler, dispatch mode,
//! topology and device make up one experiment cell.
//!
//! The paper's experiment matrix is spanned by presets:
//!
//! | Label | Preset | Meaning |
//! |---|---|---|
//! | EXT4-DR | [`StackConfig::ext4_dr`] | stock EXT4, durability guarantee |
//! | EXT4-OD | [`StackConfig::ext4_od`] | EXT4 `nobarrier`, ordering only |
//! | BFS-DR | [`StackConfig::bfs`] + `fsync` | BarrierFS, durability guarantee |
//! | BFS-OD | [`StackConfig::bfs().ordering_only()`] + `fbarrier` | BarrierFS, ordering only |
//! | OptFS | [`StackConfig::optfs`] | osync-based ordering |

use bio_block::{DispatchMode, LaneRouting, SchedulerKind, Topology};
use bio_flash::DeviceProfile;
use bio_fs::{FsConfig, FsMode};
use bio_sim::SimDuration;

/// What a "sync" means in the workload driving this stack: full
/// durability (`fsync`-style, the DR rows of the paper's tables) or
/// ordering only (`fbarrier`/`osync`/`nobarrier`, the OD rows).
///
/// The discipline is a labelling concern — the workload decides which
/// syscall it issues — but recording it on the config lets
/// [`StackConfig::label`] distinguish BFS-DR from BFS-OD instead of
/// rendering both as `BarrierFS@…`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncDiscipline {
    /// Syncs make data durable before returning (DR).
    #[default]
    Durability,
    /// Syncs only order updates; durability is not waited on (OD).
    OrderingOnly,
}

/// Complete configuration of one simulated IO stack.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Device parameters (every device in a multi-device topology uses
    /// this profile).
    pub device: DeviceProfile,
    /// Filesystem parameters.
    pub fs: FsConfig,
    /// Base IO scheduler (wrapped by the epoch scheduler).
    pub scheduler: SchedulerKind,
    /// Dispatch discipline.
    pub dispatch: DispatchMode,
    /// Lane topology: hardware queues × devices (default 1×1).
    pub topology: Topology,
    /// Software-queue → hardware-queue routing policy (default: by
    /// request id; [`LaneRouting::ByThread`] pins each submitting thread
    /// to a queue).
    pub routing: LaneRouting,
    /// Sync discipline the driving workload uses (labels only).
    pub discipline: SyncDiscipline,
    /// Master seed; every run with the same config and seed is identical.
    pub seed: u64,
    /// CPU cost charged per issued syscall (keeps zero-time loops honest).
    pub cpu_per_op: SimDuration,
    /// Block-layer congestion threshold (the kernel's `nr_requests`):
    /// threads stall while more requests than this are queued.
    pub congestion_limit: usize,
    /// Record device transfer history for crash audits (memory-heavy).
    pub record_history: bool,
}

impl StackConfig {
    /// Stock EXT4 with full flush/FUA commits (EXT4-DR rows; on a
    /// supercap device this is the "quick flush" variant).
    pub fn ext4_dr(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::Ext4, DispatchMode::Legacy)
    }

    /// EXT4 mounted `nobarrier` (EXT4-OD rows): ordering by transfer
    /// waits only, no flush anywhere.
    pub fn ext4_od(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::Ext4NoBarrier, DispatchMode::Legacy).ordering_only()
    }

    /// BarrierFS over the order-preserving block layer. Use `fsync` for
    /// BFS-DR and `fbarrier`/`fdatabarrier` plus
    /// [`StackConfig::ordering_only`] for BFS-OD.
    pub fn bfs(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::BarrierFs, DispatchMode::OrderPreserving)
    }

    /// OptFS-style optimistic crash consistency (osync).
    pub fn optfs(device: DeviceProfile) -> StackConfig {
        StackConfig::base(device, FsMode::OptFs, DispatchMode::Legacy).ordering_only()
    }

    fn base(device: DeviceProfile, mode: FsMode, dispatch: DispatchMode) -> StackConfig {
        StackConfig {
            device,
            fs: FsConfig::new(mode),
            scheduler: SchedulerKind::Elevator,
            dispatch,
            topology: Topology::single(),
            routing: LaneRouting::ByRequestId,
            discipline: SyncDiscipline::Durability,
            seed: 42,
            cpu_per_op: SimDuration::from_micros(2),
            congestion_limit: 128,
            record_history: false,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> StackConfig {
        self.seed = seed;
        self
    }

    /// Builder-style history recording (needed before calling
    /// crash-audit helpers).
    pub fn with_history(mut self) -> StackConfig {
        self.record_history = true;
        self
    }

    /// Builder-style lane topology override.
    pub fn with_topology(mut self, topology: Topology) -> StackConfig {
        self.topology = topology;
        self
    }

    /// Builder-style lane-routing override (thread-affine software
    /// queues).
    pub fn with_routing(mut self, routing: LaneRouting) -> StackConfig {
        self.routing = routing;
        self
    }

    /// Marks the workload as ordering-only (OD labels: the workload syncs
    /// with `fbarrier`/`osync`-class calls instead of `fsync`).
    pub fn ordering_only(mut self) -> StackConfig {
        self.discipline = SyncDiscipline::OrderingOnly;
        self
    }

    /// Short stack name encoding filesystem and sync discipline, matching
    /// the paper's row labels: `EXT4-DR`, `EXT4-OD`, `BFS-DR`, `BFS-OD`,
    /// `OptFS`.
    pub fn stack_label(&self) -> &'static str {
        match (self.fs.mode, self.discipline) {
            (FsMode::Ext4, SyncDiscipline::Durability) => "EXT4-DR",
            (FsMode::Ext4, SyncDiscipline::OrderingOnly) => "EXT4-nb-OD",
            (FsMode::Ext4NoBarrier, _) => "EXT4-OD",
            (FsMode::BarrierFs, SyncDiscipline::Durability) => "BFS-DR",
            (FsMode::BarrierFs, SyncDiscipline::OrderingOnly) => "BFS-OD",
            (FsMode::OptFs, _) => "OptFS",
        }
    }

    /// Full label for reports: stack, device and — when not the classical
    /// 1×1 — the lane topology (`BFS-OD@plain-SSD 8q×4dev`).
    pub fn label(&self) -> String {
        if self.topology.is_single() {
            format!("{}@{}", self.stack_label(), self.device.name)
        } else {
            format!(
                "{}@{} {}q×{}dev",
                self.stack_label(),
                self.device.name,
                self.topology.nr_hw_queues,
                self.topology.nr_devices
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_pick_matching_modes() {
        let d = DeviceProfile::ufs();
        assert_eq!(StackConfig::ext4_dr(d.clone()).fs.mode, FsMode::Ext4);
        assert_eq!(
            StackConfig::ext4_od(d.clone()).fs.mode,
            FsMode::Ext4NoBarrier
        );
        let bfs = StackConfig::bfs(d.clone());
        assert_eq!(bfs.fs.mode, FsMode::BarrierFs);
        assert_eq!(bfs.dispatch, DispatchMode::OrderPreserving);
        assert_eq!(StackConfig::optfs(d).dispatch, DispatchMode::Legacy);
    }

    #[test]
    fn labels_are_informative() {
        let c = StackConfig::bfs(DeviceProfile::plain_ssd());
        assert_eq!(c.label(), "BFS-DR@plain-SSD");
        assert_eq!(c.ordering_only().label(), "BFS-OD@plain-SSD");
        let c = StackConfig::ext4_dr(DeviceProfile::ufs());
        assert_eq!(c.label(), "EXT4-DR@UFS");
        assert_eq!(
            StackConfig::ext4_od(DeviceProfile::ufs()).stack_label(),
            "EXT4-OD"
        );
    }

    #[test]
    fn labels_encode_topology() {
        let c = StackConfig::bfs(DeviceProfile::plain_ssd())
            .ordering_only()
            .with_topology(Topology::new(8, 4, 8));
        assert_eq!(c.label(), "BFS-OD@plain-SSD 8q×4dev");
    }

    #[test]
    fn builders() {
        let c = StackConfig::bfs(DeviceProfile::ufs())
            .with_seed(7)
            .with_history()
            .with_topology(Topology::new(2, 2, 16));
        assert_eq!(c.seed, 7);
        assert!(c.record_history);
        assert_eq!(c.topology.nr_lanes(), 4);
    }
}
