//! Workload operations: the syscall-level script language workload
//! generators speak.

use bio_sim::{SimDuration, SimRng};

/// A file reference inside a workload script. `Global` files are created
//  by the harness before the run (shared between threads, e.g. a database
/// file); `Slot` files are thread-private, created by an [`Op::Create`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRef {
    /// Pre-created shared file, by index.
    Global(usize),
    /// Thread-private file slot, filled by [`Op::Create`].
    Slot(usize),
}

/// One syscall-level operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Buffered write of `blocks` blocks at `offset`.
    Write {
        /// Target file.
        file: FileRef,
        /// Block offset.
        offset: u64,
        /// Block count.
        blocks: u64,
    },
    /// Buffered read.
    Read {
        /// Target file.
        file: FileRef,
        /// Block offset.
        offset: u64,
        /// Block count.
        blocks: u64,
    },
    /// Create a thread-private file into `slot`.
    Create {
        /// Destination slot.
        slot: usize,
    },
    /// Unlink a file.
    Unlink {
        /// Target file.
        file: FileRef,
    },
    /// `fsync` — durability + ordering.
    Fsync {
        /// Target file.
        file: FileRef,
    },
    /// `fdatasync`.
    Fdatasync {
        /// Target file.
        file: FileRef,
    },
    /// `fbarrier` — ordering only (§4.1).
    Fbarrier {
        /// Target file.
        file: FileRef,
    },
    /// `fdatabarrier` — the storage mfence (§4.1).
    Fdatabarrier {
        /// Target file.
        file: FileRef,
    },
    /// Idle for a while (application think time).
    Think {
        /// Duration.
        dur: SimDuration,
    },
    /// Marks the completion of one application-level transaction
    /// (SQLite insert, OLTP transaction, varmail loop); counted in the
    /// run report's `txns`.
    TxnMark,
}

impl Op {
    /// Classifies the op for metrics attribution.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Write { .. } => OpKind::Write,
            Op::Read { .. } => OpKind::Read,
            Op::Create { .. } => OpKind::Create,
            Op::Unlink { .. } => OpKind::Unlink,
            Op::Fsync { .. } => OpKind::Fsync,
            Op::Fdatasync { .. } => OpKind::Fdatasync,
            Op::Fbarrier { .. } => OpKind::Fbarrier,
            Op::Fdatabarrier { .. } => OpKind::Fdatabarrier,
            Op::Think { .. } => OpKind::Think,
            Op::TxnMark => OpKind::TxnMark,
        }
    }
}

/// Metric buckets for operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Buffered writes.
    Write,
    /// Reads.
    Read,
    /// File creates.
    Create,
    /// Unlinks.
    Unlink,
    /// fsync.
    Fsync,
    /// fdatasync.
    Fdatasync,
    /// fbarrier.
    Fbarrier,
    /// fdatabarrier.
    Fdatabarrier,
    /// Think time.
    Think,
    /// Transaction marks.
    TxnMark,
}

impl OpKind {
    /// All kinds, for report iteration.
    pub const ALL: [OpKind; 10] = [
        OpKind::Write,
        OpKind::Read,
        OpKind::Create,
        OpKind::Unlink,
        OpKind::Fsync,
        OpKind::Fdatasync,
        OpKind::Fbarrier,
        OpKind::Fdatabarrier,
        OpKind::Think,
        OpKind::TxnMark,
    ];

    /// The four synchronisation kinds (durability and ordering flavours),
    /// for sync-latency aggregation.
    pub const SYNC: [OpKind; 4] = [
        OpKind::Fsync,
        OpKind::Fdatasync,
        OpKind::Fbarrier,
        OpKind::Fdatabarrier,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Write => "write",
            OpKind::Read => "read",
            OpKind::Create => "create",
            OpKind::Unlink => "unlink",
            OpKind::Fsync => "fsync",
            OpKind::Fdatasync => "fdatasync",
            OpKind::Fbarrier => "fbarrier",
            OpKind::Fdatabarrier => "fdatabarrier",
            OpKind::Think => "think",
            OpKind::TxnMark => "txn",
        }
    }
}

/// A workload: an operation generator driving one simulated thread.
///
/// `next_op` is called each time the thread is ready for its next
/// operation; returning `None` parks the thread for the rest of the run.
pub trait Workload {
    /// Produces the next operation.
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op>;

    /// Deep-copies the workload mid-run (the workload leg of stack
    /// `fork()`): the copy must continue the op stream exactly where the
    /// original stands. Returns `None` for workloads that cannot be
    /// duplicated (e.g. closures over external state); forking a stack
    /// that runs one panics.
    fn fork(&self) -> Option<Box<dyn Workload>> {
        None
    }
}

/// A workload from a closure (handy in tests).
pub struct FnWorkload<F>(pub F);

impl<F: FnMut(&mut SimRng) -> Option<Op>> Workload for FnWorkload<F> {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        (self.0)(rng)
    }
}

/// A workload replaying a fixed script, optionally in a loop.
#[derive(Debug, Clone)]
pub struct ScriptWorkload {
    script: Vec<Op>,
    pos: usize,
    repeat: Option<u64>,
}

impl ScriptWorkload {
    /// Runs the script once.
    pub fn once(script: Vec<Op>) -> ScriptWorkload {
        ScriptWorkload {
            script,
            pos: 0,
            repeat: Some(1),
        }
    }

    /// Runs the script `n` times.
    pub fn repeat(script: Vec<Op>, n: u64) -> ScriptWorkload {
        ScriptWorkload {
            script,
            pos: 0,
            repeat: Some(n),
        }
    }

    /// Runs the script until the simulation stops.
    pub fn forever(script: Vec<Op>) -> ScriptWorkload {
        ScriptWorkload {
            script,
            pos: 0,
            repeat: None,
        }
    }
}

impl Workload for ScriptWorkload {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, _rng: &mut SimRng) -> Option<Op> {
        if self.script.is_empty() {
            return None;
        }
        if self.pos >= self.script.len() {
            self.pos = 0;
            if let Some(left) = self.repeat.as_mut() {
                *left = left.saturating_sub(1);
            }
        }
        if self.repeat == Some(0) {
            return None;
        }
        let op = self.script[self.pos];
        self.pos += 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kinds_classify() {
        let f = FileRef::Global(0);
        assert_eq!(
            Op::Write {
                file: f,
                offset: 0,
                blocks: 1
            }
            .kind(),
            OpKind::Write
        );
        assert_eq!(Op::Fdatabarrier { file: f }.kind(), OpKind::Fdatabarrier);
        assert_eq!(Op::TxnMark.kind(), OpKind::TxnMark);
    }

    #[test]
    fn script_replays_n_times() {
        let f = FileRef::Global(0);
        let mut w = ScriptWorkload::repeat(vec![Op::TxnMark, Op::Fsync { file: f }], 2);
        let mut rng = SimRng::new(1);
        let mut count = 0;
        while w.next_op(&mut rng).is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn script_once_stops() {
        let mut w = ScriptWorkload::once(vec![Op::TxnMark]);
        let mut rng = SimRng::new(1);
        assert!(w.next_op(&mut rng).is_some());
        assert!(w.next_op(&mut rng).is_none());
        assert!(w.next_op(&mut rng).is_none());
    }

    #[test]
    fn empty_script_is_idle() {
        let mut w = ScriptWorkload::forever(vec![]);
        let mut rng = SimRng::new(1);
        assert!(w.next_op(&mut rng).is_none());
    }

    #[test]
    fn fn_workload_delegates() {
        let mut w = FnWorkload(|_rng: &mut SimRng| Some(Op::TxnMark));
        let mut rng = SimRng::new(1);
        assert_eq!(w.next_op(&mut rng), Some(Op::TxnMark));
    }
}
