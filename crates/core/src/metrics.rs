//! Run metrics: per-operation latency, context switches, throughput.

use std::collections::HashMap;

use bio_sim::{LatencyHistogram, LatencySummary, SimDuration, SimTime};

use crate::ops::OpKind;

/// Accumulated metrics for one operation kind.
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    /// Completed operations.
    pub count: u64,
    /// Latency distribution (issue → completion).
    pub latency: LatencyHistogram,
    /// Application-level context switches attributed to this kind.
    pub ctx_switches: u64,
}

impl OpMetrics {
    /// Mean context switches per operation (Fig 11's metric).
    pub fn switches_per_op(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.ctx_switches as f64 / self.count as f64
        }
    }
}

/// Live metrics collector.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    ops: HashMap<OpKind, OpMetrics>,
    /// Application transactions completed (TxnMark ops).
    pub txns: u64,
    started: SimTime,
    /// Completions referencing a thread this stack never created
    /// (forged or cross-fork events, dropped instead of panicking).
    pub dropped_wakeups: u64,
}

impl Metrics {
    /// Creates an empty collector.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Marks the measurement start (ops before this are warm-up).
    pub fn reset(&mut self, now: SimTime) {
        self.ops.clear();
        self.txns = 0;
        self.started = now;
    }

    /// Records a completed operation.
    pub fn record_op(&mut self, kind: OpKind, latency: SimDuration) {
        let m = self.ops.entry(kind).or_default();
        m.count += 1;
        m.latency.record(latency);
        if kind == OpKind::TxnMark {
            self.txns += 1;
        }
    }

    /// Attributes one context switch to an in-flight operation.
    pub fn record_ctx_switch(&mut self, kind: OpKind) {
        self.ops.entry(kind).or_default().ctx_switches += 1;
    }

    /// Counts a completion that referenced an unknown thread id — the
    /// stack's totality contract drops such events instead of indexing
    /// out of bounds (see `IoStack::complete_op`).
    pub fn note_dropped_wakeup(&mut self) {
        self.dropped_wakeups += 1;
    }

    /// Metrics for one kind (zeros if never seen).
    pub fn op(&self, kind: OpKind) -> Option<&OpMetrics> {
        self.ops.get(&kind)
    }

    /// Merged latency distribution across all four sync kinds
    /// (fsync/fdatasync/fbarrier/fdatabarrier) — the per-workload tail
    /// each experiment reports alongside throughput. Merging histograms
    /// (not summaries) keeps the percentiles exact across kinds.
    pub fn sync_latency(&self) -> LatencySummary {
        let mut merged = LatencyHistogram::new();
        for kind in OpKind::SYNC {
            if let Some(m) = self.ops.get(&kind) {
                merged.merge(&m.latency);
            }
        }
        merged.summary()
    }

    /// Builds the final report.
    pub fn report(&self, now: SimTime) -> RunReport {
        let elapsed = now.saturating_since(self.started);
        let mut ops = Vec::new();
        for kind in OpKind::ALL {
            if let Some(m) = self.ops.get(&kind) {
                if m.count > 0 {
                    ops.push(OpReport {
                        kind,
                        count: m.count,
                        latency: m.latency.summary(),
                        switches_per_op: m.switches_per_op(),
                    });
                }
            }
        }
        RunReport {
            elapsed,
            ops,
            txns: self.txns,
            sync_latency: self.sync_latency(),
        }
    }
}

/// Per-kind results in a report.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operation kind.
    pub kind: OpKind,
    /// Completed count.
    pub count: u64,
    /// Latency summary.
    pub latency: LatencySummary,
    /// Mean context switches per op.
    pub switches_per_op: f64,
}

/// Final results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Measured wall-clock span (simulated).
    pub elapsed: SimDuration,
    /// Per-kind results (only kinds that occurred).
    pub ops: Vec<OpReport>,
    /// Application transactions completed.
    pub txns: u64,
    /// Merged latency distribution of all sync calls (issue →
    /// completion), the tail-latency metric of the fig16 server
    /// workloads; zeroed when the run performed no sync calls.
    pub sync_latency: LatencySummary,
}

impl RunReport {
    /// Results for one kind.
    pub fn op(&self, kind: OpKind) -> Option<&OpReport> {
        self.ops.iter().find(|o| o.kind == kind)
    }

    /// Completed operations of a kind per second of simulated time.
    pub fn ops_per_sec(&self, kind: OpKind) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.op(kind).map_or(0.0, |o| o.count as f64 / secs)
    }

    /// Application transactions per second.
    pub fn txns_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.txns as f64 / secs
    }

    /// Total synchronisation calls (fsync+fdatasync+fbarrier+fdatabarrier)
    /// per second — the journaling-throughput metric of Fig 13.
    pub fn syncs_per_sec(&self) -> f64 {
        OpKind::SYNC.iter().map(|k| self.ops_per_sec(*k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut m = Metrics::new();
        m.reset(SimTime::ZERO);
        m.record_op(OpKind::Fsync, SimDuration::from_micros(100));
        m.record_op(OpKind::Fsync, SimDuration::from_micros(300));
        m.record_ctx_switch(OpKind::Fsync);
        m.record_ctx_switch(OpKind::Fsync);
        m.record_ctx_switch(OpKind::Fsync);
        let r = m.report(SimTime::from_secs(1));
        let f = r.op(OpKind::Fsync).unwrap();
        assert_eq!(f.count, 2);
        assert!((f.switches_per_op - 1.5).abs() < 1e-9);
        assert_eq!(r.ops_per_sec(OpKind::Fsync), 2.0);
    }

    #[test]
    fn txn_marks_counted() {
        let mut m = Metrics::new();
        m.reset(SimTime::ZERO);
        m.record_op(OpKind::TxnMark, SimDuration::ZERO);
        m.record_op(OpKind::TxnMark, SimDuration::ZERO);
        let r = m.report(SimTime::from_secs(2));
        assert_eq!(r.txns, 2);
        assert_eq!(r.txns_per_sec(), 1.0);
    }

    #[test]
    fn reset_discards_warmup() {
        let mut m = Metrics::new();
        m.record_op(OpKind::Write, SimDuration::from_micros(5));
        m.reset(SimTime::from_secs(1));
        let r = m.report(SimTime::from_secs(2));
        assert!(r.op(OpKind::Write).is_none());
        assert_eq!(r.elapsed, SimDuration::from_secs(1));
    }

    #[test]
    fn syncs_per_sec_sums_kinds() {
        let mut m = Metrics::new();
        m.reset(SimTime::ZERO);
        m.record_op(OpKind::Fsync, SimDuration::ZERO);
        m.record_op(OpKind::Fdatabarrier, SimDuration::ZERO);
        let r = m.report(SimTime::from_secs(1));
        assert_eq!(r.syncs_per_sec(), 2.0);
    }

    #[test]
    fn sync_latency_merges_all_sync_kinds() {
        let mut m = Metrics::new();
        m.reset(SimTime::ZERO);
        m.record_op(OpKind::Fsync, SimDuration::from_micros(100));
        m.record_op(OpKind::Fdatabarrier, SimDuration::from_micros(300));
        // Non-sync latencies must not pollute the merge.
        m.record_op(OpKind::Write, SimDuration::from_millis(50));
        let s = m.report(SimTime::from_secs(1)).sync_latency;
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, SimDuration::from_micros(200));
        assert_eq!(s.max, SimDuration::from_micros(300));
    }

    #[test]
    fn sync_latency_is_zeroed_without_syncs() {
        let mut m = Metrics::new();
        m.reset(SimTime::ZERO);
        m.record_op(OpKind::Write, SimDuration::from_micros(5));
        let s = m.report(SimTime::from_secs(1)).sync_latency;
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, SimDuration::ZERO);
    }

    #[test]
    fn empty_report_is_sane() {
        let m = Metrics::new();
        let r = m.report(SimTime::ZERO);
        assert!(r.ops.is_empty());
        assert_eq!(r.txns_per_sec(), 0.0);
        assert_eq!(r.ops_per_sec(OpKind::Write), 0.0);
    }
}
