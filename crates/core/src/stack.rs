//! The assembled IO stack: filesystem + block layer + device in one
//! deterministic event loop, with simulated application threads driving
//! workloads.

use std::collections::BTreeMap;

use bio_block::{BlockAction, BlockConfig, BlockEvent, BlockLayer, BlockStats, LaneStats};
use bio_flash::{
    audit_epoch_order, Device, DeviceCaptureDelta, DeviceStats, EpochViolation, FtlStats,
    PersistedImage,
};
use bio_fs::{
    check_crash_consistency, FileId, Filesystem, FsAction, FsEvent, FsStats, FsViolation,
    SyscallOutcome, ThreadId,
};
use bio_sim::{ActionSink, EventQueue, SimDuration, SimRng, SimTime};

use crate::config::StackConfig;
use crate::metrics::{Metrics, RunReport};
use crate::ops::{FileRef, Op, OpKind, Workload};

/// Events of the assembled stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Fs(FsEvent),
    Block(BlockEvent),
    /// A thread is ready to issue its next operation.
    ThreadNext(ThreadId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Ready,
    InSyscall,
    Congested,
    Finished,
}

struct WThread {
    workload: Box<dyn Workload>,
    slots: Vec<FileId>,
    state: ThreadState,
    rng: SimRng,
    current_kind: OpKind,
    op_started: SimTime,
}

impl Clone for WThread {
    fn clone(&self) -> Self {
        WThread {
            workload: self.workload.fork().expect(
                "IoStack::fork() requires forkable workloads (Workload::fork returned None)",
            ),
            slots: self.slots.clone(),
            state: self.state,
            rng: self.rng.clone(),
            current_kind: self.current_kind,
            op_started: self.op_started,
        }
    }
}

/// Full report of one run: per-op metrics plus device/fs/block counters.
#[derive(Debug, Clone)]
pub struct StackReport {
    /// Per-operation metrics.
    pub run: RunReport,
    /// 4 KiB blocks written to the device per second (the paper's IOPS
    /// axis for Figs 1 and 9).
    pub write_kiops: f64,
    /// Time-weighted mean device queue depth over the measured window.
    pub mean_qd: f64,
    /// Peak device queue depth over the measured window.
    pub peak_qd: f64,
    /// Device counters summed over every device (deltas over the measured
    /// window are up to the caller; these are totals).
    pub device: DeviceStats,
    /// Per-device counters, in device-index order (one entry on the
    /// classical 1×1 topology).
    pub per_device: Vec<DeviceStats>,
    /// Per-lane dispatch counters, in lane-index order.
    pub lanes: Vec<LaneStats>,
    /// FTL counters summed over every device.
    pub ftl: FtlStats,
    /// Filesystem counters.
    pub fs: FsStats,
    /// Block-layer counters.
    pub block: BlockStats,
}

/// Crash-injection result: the persisted image plus both audits.
#[derive(Debug)]
pub struct CrashReport {
    /// Surviving block versions.
    pub image: PersistedImage,
    /// Filesystem-level violations (commit order, torn transactions,
    /// ordered data, durability claims).
    pub fs_violations: Vec<FsViolation>,
    /// Device-level epoch violations (only when history recording was
    /// enabled).
    pub epoch_violations: Vec<EpochViolation>,
}

impl CrashReport {
    /// True when the crash respected every guarantee.
    pub fn is_consistent(&self) -> bool {
        self.fs_violations.is_empty() && self.epoch_violations.is_empty()
    }
}

/// Everything that changed since the previous capture epoch, drained by
/// [`IoStack::take_capture_delta`]: the record-history mutations from the
/// filesystem plus one [`DeviceCaptureDelta`] per device. Empty vectors
/// mean "nothing happened since last drain" — a capture built on top of
/// the previous one needs no further reconciliation.
#[derive(Debug, Clone, Default)]
pub struct StackCaptureDelta {
    /// Transaction ids whose records flipped `durability_claimed` since
    /// the last drain (the only in-place mutation of the record history).
    pub records_marked_durable: Vec<u64>,
    /// Per-device fold/group-commit deltas, in device-index order.
    pub devices: Vec<DeviceCaptureDelta>,
}

/// The assembled barrier-enabled (or legacy) IO stack.
pub struct IoStack {
    cfg: StackConfig,
    q: EventQueue<Event>,
    fs: Filesystem,
    block: BlockLayer,
    threads: Vec<WThread>,
    metrics: Metrics,
    congested: Vec<ThreadId>,
    global_files: Vec<FileId>,
    measure_start: SimTime,
    dev_blocks_at_start: u64,
    /// Reusable scratch the filesystem writes its actions into; drained by
    /// the routing work loop after every syscall/event, so steady-state
    /// event processing allocates nothing.
    fs_sink: ActionSink<FsAction>,
    /// Reusable scratch for block-layer actions (same lifecycle).
    block_sink: ActionSink<BlockAction>,
    /// Reusable scratch the run loops drain same-instant event cohorts
    /// into; `cohort_pos` is the consumption cursor, so an early exit
    /// (`run_until_done` seeing every thread finish mid-cohort) leaves
    /// the unprocessed remainder for the next `step`/run call — exactly
    /// where a single-pop loop would have left them in the queue.
    cohort: Vec<(SimTime, Event)>,
    /// Next unconsumed index into `cohort`.
    cohort_pos: usize,
    /// Threads in the terminal `Finished` state (the all-done check must
    /// run between consecutive events, so it has to be O(1)).
    finished_threads: usize,
    /// `BIO_SINGLE_STEP` escape hatch: drain one event per queue visit,
    /// mirroring the pre-batching loop (the equivalence suite runs the
    /// full figure pipeline both ways and diffs the bytes).
    single_step: bool,
}

/// Upper bound on events drained per cohort visit; a cohort larger than
/// this is simply drained across several visits of the same instant.
const COHORT_MAX: usize = 256;

impl IoStack {
    /// Builds the stack from a configuration. A multi-device topology
    /// instantiates one device per slot from the same profile; device 0
    /// keeps the master seed (so the 1×1 stack is bit-identical with the
    /// pre-topology stack) and the rest derive theirs from it.
    pub fn new(cfg: StackConfig) -> IoStack {
        let devices = (0..cfg.topology.nr_devices)
            .map(|i| {
                let seed = cfg.seed ^ 0xA076_1D64_78BD_642Fu64.wrapping_mul(i as u64);
                let mut device = Device::new(cfg.device.clone(), seed);
                device.record_history(cfg.record_history);
                device
            })
            .collect();
        let block = BlockLayer::new(
            devices,
            BlockConfig {
                scheduler: cfg.scheduler,
                dispatch: cfg.dispatch,
                topology: cfg.topology,
                routing: cfg.routing,
            },
        );
        let fs = Filesystem::new(cfg.fs.clone());
        let mut stack = IoStack {
            q: EventQueue::new(),
            block,
            fs,
            threads: Vec::new(),
            metrics: Metrics::new(),
            congested: Vec::new(),
            global_files: Vec::new(),
            measure_start: SimTime::ZERO,
            dev_blocks_at_start: 0,
            fs_sink: ActionSink::new(),
            block_sink: ActionSink::new(),
            cohort: Vec::new(),
            cohort_pos: 0,
            finished_threads: 0,
            single_step: std::env::var_os("BIO_SINGLE_STEP").is_some_and(|v| v != "0"),
            cfg,
        };
        // Arm the filesystem's periodic tasks through the router.
        stack.fs.start(&mut stack.fs_sink);
        stack.route_fs_actions();
        stack
    }

    /// The configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Forks the stack: a deep, independent copy of every layer — event
    /// queue, filesystem (transaction table, arenas), block layer (lanes,
    /// schedulers, in-flight splits), devices (FTL, cache, command queue,
    /// append log) and workload threads. Running the fork and the
    /// original produces bit-identical futures, and neither observes the
    /// other (crash-point enumeration forks at an epoch boundary instead
    /// of replaying from t=0).
    ///
    /// # Panics
    ///
    /// Panics when any workload thread is not forkable
    /// ([`Workload::fork`] returns `None`, e.g. [`crate::FnWorkload`]).
    pub fn fork(&self) -> IoStack {
        debug_assert!(self.fs_sink.is_empty(), "sinks are drained between events");
        debug_assert!(
            self.block_sink.is_empty(),
            "sinks are drained between events"
        );
        IoStack {
            cfg: self.cfg.clone(),
            q: self.q.clone(),
            fs: self.fs.clone(),
            block: self.block.clone(),
            threads: self.threads.clone(),
            metrics: self.metrics.clone(),
            congested: self.congested.clone(),
            global_files: self.global_files.clone(),
            measure_start: self.measure_start,
            dev_blocks_at_start: self.dev_blocks_at_start,
            fs_sink: ActionSink::new(),
            block_sink: ActionSink::new(),
            cohort: self.cohort.clone(),
            cohort_pos: self.cohort_pos,
            finished_threads: self.finished_threads,
            single_step: self.single_step,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Single-device convenience accessor (stats, queue-depth series).
    ///
    /// # Panics
    ///
    /// Panics on a multi-device topology; use [`IoStack::devices`] or
    /// [`IoStack::device_at`] there.
    pub fn device(&self) -> &Device {
        assert!(
            self.block.devices().len() == 1,
            "IoStack::device() on a {}-device topology; use devices()/device_at(i)",
            self.block.devices().len()
        );
        self.block.device()
    }

    /// All devices, in device-index order.
    pub fn devices(&self) -> &[Device] {
        self.block.devices()
    }

    /// Device `i` of the topology.
    pub fn device_at(&self, i: usize) -> &Device {
        self.block.device_at(i)
    }

    /// Direct filesystem access.
    pub fn fs(&self) -> &Filesystem {
        &self.fs
    }

    /// True once every workload thread has reached the terminal
    /// `Finished` state (the stack may still have journal work queued —
    /// see [`bio_fs::Filesystem::journal_quiescent`] for that half).
    pub fn workloads_finished(&self) -> bool {
        self.all_threads_finished()
    }

    /// Arms per-epoch delta tracking in the filesystem and every device:
    /// from this call on, durable-mark, fold and group-commit events are
    /// journaled so [`IoStack::take_capture_delta`] can report exactly
    /// what changed since the previous capture. Idempotent; costs one
    /// `Vec::push` per tracked event while armed.
    pub fn enable_capture_tracking(&mut self) {
        self.fs.enable_capture_tracking();
        for dev in self.block.devices_mut() {
            dev.enable_capture_tracking();
        }
    }

    /// Drains the per-epoch capture deltas accumulated since the last
    /// drain (or since [`IoStack::enable_capture_tracking`]). Devices are
    /// reported in device-index order.
    pub fn take_capture_delta(&mut self) -> StackCaptureDelta {
        StackCaptureDelta {
            records_marked_durable: self.fs.take_durable_marks(),
            devices: self
                .block
                .devices_mut()
                .iter_mut()
                .map(Device::take_capture_delta)
                .collect(),
        }
    }

    /// Creates a shared file visible to workloads as
    /// [`FileRef::Global`]`(index)`. Call before starting the run.
    pub fn create_global_file(&mut self) -> usize {
        let fid = self.fs.create(ThreadId(0), &mut self.fs_sink);
        self.route_fs_actions();
        self.global_files.push(fid);
        self.global_files.len() - 1
    }

    /// Adds a workload thread; it starts issuing operations immediately
    /// (staggered by a microsecond per thread to avoid artificial
    /// lockstep).
    pub fn add_thread(&mut self, workload: Box<dyn Workload>) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        let seed = self.cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid.0 as u64 + 1));
        self.threads.push(WThread {
            workload,
            slots: Vec::new(),
            state: ThreadState::Ready,
            rng: SimRng::new(seed),
            current_kind: OpKind::Think,
            op_started: SimTime::ZERO,
        });
        let stagger = SimDuration::from_micros(tid.0 as u64 + 1);
        self.q.push(self.q.now() + stagger, Event::ThreadNext(tid));
        tid
    }

    // ------------------------------------------------------------------
    // Event routing.
    // ------------------------------------------------------------------

    /// Drains the filesystem action sink — the explicit work loop that
    /// replaced the old `route_fs` → `route_block` recursion. Filesystem
    /// actions are processed in emission order; a `Submit` runs the block
    /// layer immediately and drains its actions before the next
    /// filesystem action, which preserves the depth-first routing order
    /// of the recursive version exactly (the block layer never emits
    /// filesystem actions, so the loop is flat).
    fn route_fs_actions(&mut self) {
        let mut actions = self.fs_sink.take_buf();
        for a in actions.drain(..) {
            match a {
                FsAction::Submit(req) => {
                    let now = self.q.now();
                    self.block.submit(req, now, &mut self.block_sink);
                    self.route_block_actions();
                }
                FsAction::Wake(tid) => {
                    self.complete_op(tid);
                }
                FsAction::CtxSwitch(tid) => {
                    let kind = self.threads[tid.0 as usize].current_kind;
                    self.metrics.record_ctx_switch(kind);
                }
                FsAction::After(d, ev) => {
                    self.q.push_after(d, Event::Fs(ev));
                }
            }
        }
        self.fs_sink.restore(actions);
    }

    /// Drains the block action sink into scheduled events. Block actions
    /// never re-enter a layer state machine, so this loop cannot grow its
    /// own input.
    fn route_block_actions(&mut self) {
        for a in self.block_sink.drain() {
            match a {
                BlockAction::Complete(rid, _at) => {
                    self.q.push_now(Event::Fs(FsEvent::ReqDone(rid)));
                }
                BlockAction::After(d, ev) => {
                    self.q.push_after(d, Event::Block(ev));
                }
            }
        }
        // Completion-side payload return: tag buffers the block layer
        // retired (command completions, split submissions) go back into
        // the filesystem's arena instead of the allocator.
        while let Some(buf) = self.block.pop_reclaimed_payload() {
            self.fs.restore_payload_buf(buf);
        }
    }

    /// Records the completion of the current blocked op and schedules the
    /// thread's next operation.
    fn complete_op(&mut self, tid: ThreadId) {
        let now = self.q.now();
        // A completion for a thread id this stack never created is a
        // forged or cross-fork event: drop it with a counter (handlers
        // are total; see docs/INVARIANTS.md).
        let Some(th) = self.threads.get_mut(tid.0 as usize) else {
            self.metrics.note_dropped_wakeup();
            return;
        };
        debug_assert_eq!(th.state, ThreadState::InSyscall);
        th.state = ThreadState::Ready;
        let latency = now.saturating_since(th.op_started);
        self.metrics.record_op(th.current_kind, latency);
        self.q
            .push_after(self.cfg.cpu_per_op, Event::ThreadNext(tid));
    }

    fn resolve(&self, tid: ThreadId, r: FileRef) -> FileId {
        match r {
            FileRef::Global(i) => self.global_files[i],
            FileRef::Slot(i) => self.threads[tid.0 as usize].slots[i],
        }
    }

    fn thread_issue(&mut self, tid: ThreadId, now: SimTime) {
        let idx = tid.0 as usize;
        if self.threads[idx].state == ThreadState::Finished {
            return;
        }
        // Congestion control (the kernel's nr_requests): stall issuing
        // while the block layer is backed up.
        if self.block.queued() >= self.cfg.congestion_limit {
            self.threads[idx].state = ThreadState::Congested;
            if !self.congested.contains(&tid) {
                self.congested.push(tid);
            }
            return;
        }
        let op = {
            let th = &mut self.threads[idx];
            th.state = ThreadState::Ready;
            th.workload.next_op(&mut th.rng)
        };
        let Some(op) = op else {
            self.threads[idx].state = ThreadState::Finished;
            self.finished_threads += 1; // terminal: never decremented
            return;
        };
        let kind = op.kind();
        {
            let th = &mut self.threads[idx];
            th.current_kind = kind;
            th.op_started = now;
        }
        debug_assert!(self.fs_sink.is_empty(), "sink drained between ops");
        let outcome = match op {
            Op::Think { dur } => {
                self.metrics.record_op(OpKind::Think, dur);
                self.q.push_after(dur, Event::ThreadNext(tid));
                return;
            }
            Op::TxnMark => {
                self.metrics.record_op(OpKind::TxnMark, SimDuration::ZERO);
                self.q.push_now(Event::ThreadNext(tid));
                return;
            }
            Op::Create { slot } => {
                let fid = self.fs.create(tid, &mut self.fs_sink);
                let th = &mut self.threads[idx];
                if th.slots.len() <= slot {
                    th.slots.resize(slot + 1, fid);
                }
                th.slots[slot] = fid;
                SyscallOutcome::Done
            }
            Op::Unlink { file } => {
                let f = self.resolve(tid, file);
                self.fs.unlink(tid, f, &mut self.fs_sink);
                SyscallOutcome::Done
            }
            Op::Write {
                file,
                offset,
                blocks,
            } => {
                let f = self.resolve(tid, file);
                self.fs
                    .write(tid, f, offset, blocks, now, &mut self.fs_sink)
            }
            Op::Read {
                file,
                offset,
                blocks,
            } => {
                let f = self.resolve(tid, file);
                self.fs.read(tid, f, offset, blocks, &mut self.fs_sink)
            }
            Op::Fsync { file } => {
                let f = self.resolve(tid, file);
                self.fs.fsync(tid, f, now, &mut self.fs_sink)
            }
            Op::Fdatasync { file } => {
                let f = self.resolve(tid, file);
                self.fs.fdatasync(tid, f, now, &mut self.fs_sink)
            }
            Op::Fbarrier { file } => {
                let f = self.resolve(tid, file);
                self.fs.fbarrier(tid, f, now, &mut self.fs_sink)
            }
            Op::Fdatabarrier { file } => {
                let f = self.resolve(tid, file);
                self.fs.fdatabarrier(tid, f, now, &mut self.fs_sink)
            }
        };
        self.route_fs_actions();
        match outcome {
            SyscallOutcome::Done => {
                self.metrics.record_op(kind, SimDuration::ZERO);
                self.q
                    .push_after(self.cfg.cpu_per_op, Event::ThreadNext(tid));
            }
            SyscallOutcome::Blocked => {
                self.threads[idx].state = ThreadState::InSyscall;
            }
        }
    }

    fn maybe_uncongest(&mut self) {
        if self.congested.is_empty() || self.block.queued() >= self.cfg.congestion_limit / 2 {
            return;
        }
        let woken = std::mem::take(&mut self.congested);
        for tid in woken {
            if self.threads[tid.0 as usize].state == ThreadState::Congested {
                self.threads[tid.0 as usize].state = ThreadState::Ready;
                self.q.push_now(Event::ThreadNext(tid));
            }
        }
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Processes one event; returns false when the queue is empty.
    /// Exposed so callers can observe intermediate state (e.g. the
    /// committing-transaction list) between events.
    pub fn step(&mut self) -> bool {
        let (now, ev) = if self.cohort_pos < self.cohort.len() {
            let e = self.cohort[self.cohort_pos];
            self.cohort_pos += 1;
            e
        } else {
            match self.q.pop() {
                Some(e) => e,
                None => return false,
            }
        };
        self.dispatch_event(ev, now);
        self.maybe_uncongest();
        true
    }

    /// Routes one popped event into the owning layer and drains the
    /// resulting actions through the reusable sinks.
    fn dispatch_event(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::Fs(ev) => {
                self.fs.handle(ev, now, &mut self.fs_sink);
                self.route_fs_actions();
            }
            Event::Block(ev) => {
                self.block.handle(ev, now, &mut self.block_sink);
                self.route_block_actions();
            }
            Event::ThreadNext(tid) => self.thread_issue(tid, now),
        }
    }

    /// True once every workload thread has reached the terminal
    /// `Finished` state.
    fn all_threads_finished(&self) -> bool {
        self.finished_threads == self.threads.len()
    }

    /// The shared run loop behind [`IoStack::run_for`] and
    /// [`IoStack::run_until_done`]: drains same-instant event cohorts
    /// into the reusable scratch buffer and routes each cohort as
    /// maximal same-layer runs, flushing the action sinks once per run
    /// instead of once per event.
    ///
    /// The batched path is *bit-exact* with the single-pop loop it
    /// replaced, by construction:
    ///
    /// - A cohort shares one timestamp, and followers pushed while it is
    ///   processed carry later sequence numbers, so they sort after the
    ///   whole cohort — draining upfront preserves the `(time, seq)`
    ///   FIFO order.
    /// - Within a same-layer run, `handle` only reads that layer's own
    ///   state, while routing only touches *other* state (the queue,
    ///   threads, metrics, the block layer for `Submit`s) — so deferring
    ///   the routing to the end of the run leaves every `handle` input
    ///   and the emitted action order unchanged. Runs break at layer
    ///   boundaries because routing a filesystem `Submit` mutates block
    ///   state, and `ThreadNext` is always dispatched individually (it
    ///   reads block congestion and routes inline).
    /// - The per-event `maybe_uncongest` calls a single-pop loop makes
    ///   are no-ops while `congested` is empty, and nothing inside an
    ///   Fs/Block run can populate `congested` (only `thread_issue`
    ///   does); the moment it is non-empty the remainder of the cohort
    ///   falls back to exact per-event dispatch.
    ///
    /// Returns true when every thread has finished — checked between
    /// events exactly where the single-pop `run_until_done` checked it
    /// (threads only finish inside `ThreadNext` dispatch, so the check
    /// is needed only there and at cohort boundaries). With `until_done`
    /// the loop stops at that point, leaving any unprocessed cohort
    /// remainder buffered for the next run call.
    fn drive(&mut self, deadline: SimTime, until_done: bool) -> bool {
        let cohort_max = if self.single_step { 1 } else { COHORT_MAX };
        loop {
            if until_done && self.all_threads_finished() {
                return true;
            }
            if self.cohort_pos == self.cohort.len() {
                self.cohort.clear();
                self.cohort_pos = 0;
                let mut buf = std::mem::take(&mut self.cohort);
                let n = self
                    .q
                    .pop_batch_at_or_before(deadline, &mut buf, cohort_max);
                self.cohort = buf;
                if n == 0 {
                    return false;
                }
            }
            while self.cohort_pos < self.cohort.len() {
                let (now, ev) = self.cohort[self.cohort_pos];
                if !self.congested.is_empty() {
                    // Exact fallback: congestion wake-ups depend on the
                    // block queue depth after *each* event.
                    self.cohort_pos += 1;
                    self.dispatch_event(ev, now);
                    self.maybe_uncongest();
                    if until_done
                        && matches!(ev, Event::ThreadNext(_))
                        && self.all_threads_finished()
                    {
                        return true;
                    }
                    continue;
                }
                match ev {
                    Event::Fs(_) => {
                        while let Some(&(t, Event::Fs(fe))) = self.cohort.get(self.cohort_pos) {
                            self.cohort_pos += 1;
                            self.fs.handle(fe, t, &mut self.fs_sink);
                        }
                        self.route_fs_actions();
                    }
                    Event::Block(_) => {
                        while let Some(&(t, Event::Block(be))) = self.cohort.get(self.cohort_pos) {
                            self.cohort_pos += 1;
                            self.block.handle(be, t, &mut self.block_sink);
                        }
                        self.route_block_actions();
                    }
                    Event::ThreadNext(tid) => {
                        self.cohort_pos += 1;
                        self.thread_issue(tid, now);
                        self.maybe_uncongest();
                        if until_done && self.all_threads_finished() {
                            return true;
                        }
                    }
                }
            }
        }
    }

    /// Runs for a simulated duration (events beyond the deadline stay
    /// queued).
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.q.now() + d;
        self.drive(deadline, false);
    }

    /// Runs until every workload thread has finished (plus a settle
    /// period for in-flight IO), or until `cap` simulated time passes.
    /// Returns true if all threads finished.
    pub fn run_until_done(&mut self, cap: SimDuration) -> bool {
        let deadline = self.q.now() + cap;
        self.drive(deadline, true)
    }

    /// Discards warm-up measurements and starts the measured window now.
    pub fn start_measuring(&mut self) {
        self.measure_start = self.q.now();
        self.metrics.reset(self.q.now());
        self.dev_blocks_at_start = self
            .block
            .devices()
            .iter()
            .map(|d| d.stats().blocks_written)
            .sum();
    }

    /// Builds the report for the measured window. Device and FTL counters
    /// are summed over every device; queue depth is the mean of the
    /// per-device means (and the max of the per-device peaks).
    pub fn report(&self) -> StackReport {
        let now = self.q.now();
        let run = self.metrics.report(now);
        let secs = now.saturating_since(self.measure_start).as_secs_f64();
        let per_device: Vec<DeviceStats> = self.block.devices().iter().map(|d| d.stats()).collect();
        let mut dev = DeviceStats::default();
        for s in &per_device {
            dev.write_cmds += s.write_cmds;
            dev.read_cmds += s.read_cmds;
            dev.flush_cmds += s.flush_cmds;
            dev.blocks_written += s.blocks_written;
            dev.programs += s.programs;
            dev.cache_hit_reads += s.cache_hit_reads;
            dev.queue_full_rejections += s.queue_full_rejections;
        }
        let mut ftl = FtlStats::default();
        for d in self.block.devices() {
            let f = d.ftl_stats();
            ftl.host_appends += f.host_appends;
            ftl.gc_appends += f.gc_appends;
            ftl.gc_runs += f.gc_runs;
            ftl.erases += f.erases;
        }
        let blocks = dev.blocks_written - self.dev_blocks_at_start;
        let mut mean_qd = 0.0;
        let mut peak_qd = 0.0f64;
        for d in self.block.devices() {
            let qd = d.qd_series();
            mean_qd += qd.weighted_mean(self.measure_start, now);
            peak_qd = peak_qd.max(qd.max_in(self.measure_start, now));
        }
        mean_qd /= self.block.devices().len() as f64;
        StackReport {
            run,
            write_kiops: if secs > 0.0 {
                blocks as f64 / secs / 1000.0
            } else {
                0.0
            },
            mean_qd,
            peak_qd,
            device: dev,
            per_device,
            lanes: self.block.lane_stats(),
            ftl,
            fs: self.fs.stats(),
            block: self.block.stats(),
        }
    }

    /// Injects a power failure right now and audits the survivors.
    ///
    /// On a multi-device topology the per-device images are remapped
    /// through the stripe layout into one global image for the
    /// filesystem-level audit; the device-level epoch audit runs per
    /// device against that device's own local image and history.
    pub fn crash(&self) -> CrashReport {
        let image = if self.cfg.topology.is_single() {
            self.block.device().crash_image()
        } else {
            let mut map = BTreeMap::new();
            for (di, d) in self.block.devices().iter().enumerate() {
                for (local, tag) in d.crash_image().iter() {
                    map.insert(self.cfg.topology.global(di, local), tag);
                }
            }
            PersistedImage::from_map(map)
        };
        let fs_violations = check_crash_consistency(self.fs.records(), &image);
        let mut epoch_violations = Vec::new();
        for d in self.block.devices() {
            if let Some(h) = d.history() {
                epoch_violations.extend(audit_epoch_order(h, &d.crash_image()));
            }
        }
        CrashReport {
            image,
            fs_violations,
            epoch_violations,
        }
    }
}
