//! # barrier-io — the assembled Barrier-Enabled IO Stack
//!
//! This crate wires the three layers of the reproduction together into a
//! runnable simulator (the paper's Fig 4):
//!
//! ```text
//!   workload threads (bio-workloads)
//!        │  write/fsync/fbarrier/fdatabarrier
//!        ▼
//!   BarrierFS / EXT4 / OptFS          (bio-fs)
//!        │  REQ_ORDERED / REQ_BARRIER requests
//!        ▼
//!   epoch scheduler + order-preserving dispatch   (bio-block)
//!        │  SCSI commands with ordered priority
//!        ▼
//!   barrier-compliant flash device    (bio-flash)
//! ```
//!
//! [`StackConfig`] picks the experiment cell (EXT4-DR / EXT4-OD / BFS /
//! OptFS × device), [`IoStack`] runs workloads deterministically, and
//! [`StackReport`] / [`CrashReport`] capture the results the paper's
//! figures are made of.
//!
//! ```
//! use barrier_io::{FileRef, IoStack, Op, ScriptWorkload, StackConfig};
//! use bio_flash::DeviceProfile;
//! use bio_sim::SimDuration;
//!
//! let mut stack = IoStack::new(StackConfig::bfs(DeviceProfile::ufs()));
//! let db = stack.create_global_file();
//! let script = vec![
//!     Op::Write { file: FileRef::Global(db), offset: 0, blocks: 1 },
//!     Op::Fdatabarrier { file: FileRef::Global(db) },
//!     Op::Write { file: FileRef::Global(db), offset: 1, blocks: 1 },
//!     Op::Fsync { file: FileRef::Global(db) },
//!     Op::TxnMark,
//! ];
//! stack.add_thread(Box::new(ScriptWorkload::repeat(script, 10)));
//! stack.run_until_done(SimDuration::from_secs(10));
//! assert_eq!(stack.report().run.txns, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod metrics;
mod ops;
mod stack;

pub use config::{StackConfig, SyncDiscipline};
pub use metrics::{Metrics, OpMetrics, OpReport, RunReport};
pub use ops::{FileRef, FnWorkload, Op, OpKind, ScriptWorkload, Workload};
pub use stack::{CrashReport, IoStack, StackCaptureDelta, StackReport};

// Re-export the vocabulary types callers need alongside the stack.
pub use bio_block::{BlockConfig, DispatchMode, LaneRouting, LaneStats, SchedulerKind, Topology};
pub use bio_flash::{BarrierMode, DeviceCaptureDelta, DeviceProfile};
pub use bio_fs::{
    check_crash_consistency, ConsistencyCheck, FsConfig, FsMode, FsViolation, ThreadId, TxnRecord,
};
pub use bio_sim::{SimDuration, SimTime};
