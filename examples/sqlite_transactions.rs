//! SQLite on the barrier-enabled stack (§5 / Fig 14 of the paper).
//!
//! A SQLite insert in PERSIST journal mode calls `fdatasync` four times;
//! three of those exist only to order the undo log, journal header,
//! database node and commit. This example measures the three substitution
//! levels the paper evaluates:
//!
//! * EXT4-DR — all four calls are `fdatasync` (transfer-and-flush),
//! * BFS-DR  — the three ordering points become `fdatabarrier`,
//!   durability of the commit is kept,
//! * BFS-OD  — all four become ordering-only.
//!
//! Run with: `cargo run --release --example sqlite_transactions`

use barrier_io::{DeviceProfile, FileRef, IoStack, SimDuration, StackConfig};
use bio_workloads::{Sqlite, SqliteJournalMode};

fn run(label: &str, cfg: StackConfig, mk: fn(SqliteJournalMode, FileRef, FileRef, u64) -> Sqlite) {
    let inserts = 3_000;
    let mut stack = IoStack::new(cfg);
    let db = stack.create_global_file();
    let journal = stack.create_global_file();
    stack.add_thread(Box::new(mk(
        SqliteJournalMode::Persist,
        FileRef::Global(db),
        FileRef::Global(journal),
        inserts,
    )));
    stack.start_measuring();
    assert!(
        stack.run_until_done(SimDuration::from_secs(600)),
        "workload did not finish"
    );
    let report = stack.report();
    println!(
        "{label:<28} {:>8.0} inserts/s   ({} flushes, {} journal commits)",
        report.run.txns_per_sec(),
        report.fs.flushes,
        report.fs.commits,
    );
}

fn main() {
    println!("SQLite PERSIST-mode inserts on a mobile UFS device\n");
    run(
        "EXT4-DR (4x fdatasync)",
        StackConfig::ext4_dr(DeviceProfile::ufs()),
        Sqlite::durability,
    );
    run(
        "BFS-DR (3x fdatabarrier)",
        StackConfig::bfs(DeviceProfile::ufs()),
        Sqlite::barrier_durability,
    );
    run(
        "BFS-OD (4x fdatabarrier)",
        StackConfig::bfs(DeviceProfile::ufs()),
        Sqlite::ordering,
    );

    println!("\nSame, on the server plain-SSD\n");
    run(
        "EXT4-DR (4x fdatasync)",
        StackConfig::ext4_dr(DeviceProfile::plain_ssd()),
        Sqlite::durability,
    );
    run(
        "BFS-DR (3x fdatabarrier)",
        StackConfig::bfs(DeviceProfile::plain_ssd()),
        Sqlite::barrier_durability,
    );
    run(
        "BFS-OD (4x fdatabarrier)",
        StackConfig::bfs(DeviceProfile::plain_ssd()),
        Sqlite::ordering,
    );
    println!(
        "\nThe BFS-DR row keeps transaction durability: only the calls whose job\n\
         was ordering were replaced. That is the paper's §5 substitution."
    );
}
