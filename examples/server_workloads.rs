//! The two post-paper server workloads, with tail latency (fig16).
//!
//! Throughput is only half the barrier story. An ordering-only sync call
//! (`fbarrier`/`fdatabarrier`) returns without waiting on DMA transfer or
//! cache flush, so its *latency tail* collapses even where throughput
//! gains are modest. This example runs the two workloads built on the
//! phase-engine framework —
//!
//! * **RocksDB-WAL** — LSM put stream: WAL append + commit sync per put,
//!   memtable flushes to L0 SSTs, L0→L1 compactions in between;
//! * **mail-queue** — postfix-style fsync storm: every message syncs its
//!   spool file *and* the queue directory;
//!
//! — on EXT4-DR (transfer-and-flush) vs BFS-OD (barrier, ordering-only),
//! printing inserts/sec alongside the p50/p95/p99 of every sync call.
//!
//! Run with: `cargo run --release --example server_workloads`

use barrier_io::{DeviceProfile, IoStack, SimDuration, StackConfig, Workload};
use bio_workloads::{MailQueue, RocksDbWal, SyncMode};

fn run(label: &str, cfg: StackConfig, threads: usize, mk: &dyn Fn() -> Box<dyn Workload>) {
    let mut stack = IoStack::new(cfg);
    for _ in 0..threads {
        stack.add_thread(mk());
    }
    stack.start_measuring();
    assert!(
        stack.run_until_done(SimDuration::from_secs(600)),
        "workload did not finish"
    );
    let report = stack.report();
    let s = report.run.sync_latency;
    println!(
        "{label:<24} {:>7.0} Tx/s   sync p50 {:>9} p95 {:>9} p99 {:>9}  ({} syncs)",
        report.run.txns_per_sec(),
        s.p50.to_string(),
        s.p95.to_string(),
        s.p99.to_string(),
        s.count,
    );
}

fn main() {
    let dev = DeviceProfile::plain_ssd;
    let puts = 2_000;
    let msgs = 1_000;

    println!("RocksDB-style WAL + compaction (4 DB threads, plain SSD)\n");
    run(
        "EXT4-DR (fdatasync)",
        StackConfig::ext4_dr(dev()),
        4,
        &|| Box::new(RocksDbWal::new(SyncMode::Fdatasync, puts)),
    );
    run("BFS-OD (fdatabarrier)", StackConfig::bfs(dev()), 4, &|| {
        Box::new(RocksDbWal::new(SyncMode::Fdatabarrier, puts))
    });

    println!("\nMail-queue fsync storm (8 queue threads, plain SSD)\n");
    run("EXT4-DR (fsync)", StackConfig::ext4_dr(dev()), 8, &|| {
        Box::new(MailQueue::new(SyncMode::Fsync, msgs, 8))
    });
    run("BFS-OD (fbarrier)", StackConfig::bfs(dev()), 8, &|| {
        Box::new(MailQueue::new(SyncMode::Fbarrier, msgs, 8))
    });

    println!(
        "\nThe barrier rows answer each sync without draining the device: the\n\
         p95/p99 columns, not the Tx/s column, are where the flush tax shows."
    );
}
