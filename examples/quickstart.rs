//! Quickstart: the "Hello before World" guarantee from §4.1 of the paper.
//!
//! ```text
//! write(fileA, "Hello");
//! fdatabarrier(fileA);
//! write(fileA, "World");
//! ```
//!
//! On the barrier-enabled stack, `fdatabarrier` is a storage mfence: it
//! returns immediately (no flush, no transfer wait), yet "Hello" can never
//! reach the flash after "World". This example runs that exact program,
//! crashes the device at a random point, and audits the survivors.
//!
//! Run with: `cargo run --release --example quickstart`

use barrier_io::{
    BarrierMode, DeviceProfile, FileRef, IoStack, Op, OpKind, ScriptWorkload, SimDuration,
    StackConfig,
};

fn ordering_program(file: usize) -> Vec<Op> {
    let f = FileRef::Global(file);
    vec![
        // "Hello": block 0.
        Op::Write {
            file: f,
            offset: 0,
            blocks: 1,
        },
        // The storage mfence.
        Op::Fdatabarrier { file: f },
        // "World": block 1.
        Op::Write {
            file: f,
            offset: 1,
            blocks: 1,
        },
    ]
}

fn main() {
    println!("Barrier-Enabled IO Stack — quickstart\n");

    // 1. A barrier-enabled stack: BarrierFS over the order-preserving
    //    block layer over a barrier-compliant UFS device.
    let cfg = StackConfig::bfs(DeviceProfile::ufs()).with_history();
    let mut stack = IoStack::new(cfg);
    let file = stack.create_global_file();
    stack.add_thread(Box::new(ScriptWorkload::repeat(
        ordering_program(file),
        200,
    )));

    // Run a bit, then pull the plug mid-flight.
    stack.run_for(SimDuration::from_millis(7));
    let crash = stack.crash();
    println!(
        "BarrierFS on barrier device: crashed after {} — {} fs violations, {} epoch violations",
        stack.now(),
        crash.fs_violations.len(),
        crash.epoch_violations.len()
    );
    assert!(
        crash.is_consistent(),
        "the barrier stack must never reorder"
    );

    // 2. The same program on a legacy stack over an ORDERLESS device,
    //    relying on nothing at all (plain writes): ordering can break.
    let mut broken_crashes = 0;
    for seed in 0..20 {
        let mut dev = DeviceProfile::ufs().with_barrier_mode(BarrierMode::Unsupported);
        dev.cache_blocks = 48; // small cache: the orderless destage engine is busy
        let cfg = StackConfig::bfs(dev).with_seed(seed).with_history();
        let mut legacy = IoStack::new(cfg);
        let file = legacy.create_global_file();
        legacy.add_thread(Box::new(ScriptWorkload::repeat(
            ordering_program(file),
            200,
        )));
        legacy.run_for(SimDuration::from_millis(4 + seed * 2));
        if !legacy.crash().epoch_violations.is_empty() {
            broken_crashes += 1;
        }
    }
    println!(
        "same barriers, firmware ignores them: {broken_crashes}/20 crashes reordered \"Hello\"/\"World\""
    );

    // 3. And the performance side: the barrier costs (almost) nothing.
    let mut stack = IoStack::new(StackConfig::bfs(DeviceProfile::ufs()));
    let file = stack.create_global_file();
    stack.add_thread(Box::new(ScriptWorkload::repeat(
        ordering_program(file),
        2_000,
    )));
    stack.start_measuring();
    stack.run_until_done(SimDuration::from_secs(60));
    let report = stack.report();
    let fdb = report.run.op(OpKind::Fdatabarrier).expect("ran");
    println!(
        "\n2000 ordered pairs in {} simulated; fdatabarrier: {} calls, \
         {:.2} context switches each, mean latency {}",
        report.run.elapsed, fdb.count, fdb.switches_per_op, fdb.latency.mean
    );
    println!("device wrote {:.1} K blocks/s", report.write_kiops);
}
