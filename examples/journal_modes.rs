//! Anatomy of a journal commit: the Fig 3 / Fig 7 / Fig 8 story.
//!
//! Shows, for one `write(); fsync()` under each journaling discipline,
//! where the time goes — and how the interval between back-to-back
//! commits shrinks from `tD + tC + tF` (EXT4 full flush) to `tD`
//! (BarrierFS dual-mode journaling).
//!
//! Run with: `cargo run --release --example journal_modes`

use barrier_io::{DeviceProfile, IoStack, OpKind, SimDuration, StackConfig, Workload};
use bio_workloads::{Dwsl, SyncMode};

fn fsync_breakdown(label: &str, cfg: StackConfig) {
    let n = 2_000;
    let mut cfg = cfg;
    cfg.fs.timer_tick = SimDuration::from_micros(1); // every fsync commits
    let mut stack = IoStack::new(cfg);
    let mut w = Some(Box::new(Dwsl::new(SyncMode::Fsync, n)) as Box<dyn Workload>);
    stack.add_thread(w.take().expect("workload"));
    stack.start_measuring();
    assert!(stack.run_until_done(SimDuration::from_secs(600)));
    let report = stack.report();
    let f = report.run.op(OpKind::Fsync).expect("fsync ran");
    println!(
        "{label:<36} fsync mean {:>9}  p99 {:>9}  {:.2} switches  {:>6} commits  {:>6} flushes",
        f.latency.mean.to_string(),
        f.latency.p99.to_string(),
        f.switches_per_op,
        report.fs.commits,
        report.fs.flushes,
    );
}

fn main() {
    println!("Journal commit anatomy: 2000 allocating write+fsync pairs, plain-SSD\n");
    fsync_breakdown(
        "EXT4 full flush (FLUSH|FUA commit)",
        StackConfig::ext4_dr(DeviceProfile::plain_ssd()),
    );
    fsync_breakdown(
        "EXT4 nobarrier (no flush at all)",
        StackConfig::ext4_od(DeviceProfile::plain_ssd()),
    );
    fsync_breakdown("EXT4 quick flush (PLP device)", {
        let mut d = DeviceProfile::plain_ssd();
        d.plp = true;
        d.name = "plain-SSD+PLP".into();
        StackConfig::ext4_dr(d)
    });
    fsync_breakdown(
        "BarrierFS dual-mode journaling",
        StackConfig::bfs(DeviceProfile::plain_ssd()),
    );
    println!(
        "\nReading Fig 7 off these rows: EXT4 interleaves D, JD and JC with\n\
         transfer waits and two flush points; BarrierFS dispatches all three\n\
         in order-preserving mode and pays a single flush at the end — fewer\n\
         context switches, one flush, and commits that overlap."
    );
}
