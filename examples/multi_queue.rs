//! Multi-queue, multi-device topologies (the blk-mq model).
//!
//! The paper leaves one question open: does order-preserving dispatch
//! survive a multi-queue interface, where requests fan out across
//! independent submission queues? This example scales the same commit
//! storm across lane topologies and watches the two costs fight:
//!
//! * more **devices** add bandwidth (RAID-0 striping spreads the
//!   journal);
//! * more **queues per device** fragment each epoch across lanes, and the
//!   cross-lane sequencer must wait for the slowest lane before releasing
//!   the next epoch.
//!
//! Run with: `cargo run --release --example multi_queue`

use barrier_io::{
    DeviceProfile, FileRef, IoStack, Op, ScriptWorkload, SimDuration, StackConfig, Topology,
};

/// A small ordered transaction: two data blocks, a barrier, a commit.
fn txn(file: usize) -> Vec<Op> {
    let f = FileRef::Global(file);
    vec![
        Op::Write {
            file: f,
            offset: 0,
            blocks: 2,
        },
        Op::Fdatabarrier { file: f },
        Op::Write {
            file: f,
            offset: 2,
            blocks: 1,
        },
        Op::Fbarrier { file: f },
        Op::TxnMark,
    ]
}

fn main() {
    println!("Barrier-Enabled IO Stack — multi-queue topologies\n");
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "topology", "Tx/s", "blocks/s", "epochs"
    );
    for (queues, devices) in [(1, 1), (1, 2), (1, 4), (4, 1), (4, 4), (8, 4)] {
        let cfg = StackConfig::bfs(DeviceProfile::plain_ssd())
            .ordering_only()
            .with_topology(Topology::new(queues, devices, 8));
        let label = cfg.label();
        let mut stack = IoStack::new(cfg);
        for _ in 0..64 {
            // One file per thread so the allocations spread over stripes.
            let file = stack.create_global_file();
            stack.add_thread(Box::new(ScriptWorkload::repeat(txn(file), 40)));
        }
        stack.start_measuring();
        stack.run_until_done(SimDuration::from_secs(600));
        let report = stack.report();
        // Per-device work really is striped: every device dispatched.
        assert!(report.per_device.iter().all(|d| d.write_cmds > 0));
        println!(
            "{label:<28} {:>10.0} {:>10.0} {:>8}",
            report.run.txns_per_sec(),
            report.write_kiops * 1000.0,
            report.block.epochs_sequenced,
        );
    }
}
