//! Crash-consistency audit across the whole stack matrix.
//!
//! Injects power failures at many random points into four stacks and
//! tabulates the violations the recovery checker finds:
//!
//! * BarrierFS on a barrier-compliant device — must always recover,
//! * EXT4 with full flushes — must always recover,
//! * EXT4 `nobarrier` on an orderless device — the configuration the
//!   paper warns about: commits reorder and tear,
//! * the same orderless device behind BarrierFS — barriers cannot help if
//!   the firmware ignores them (why "cache barrier is a necessity, not a
//!   luxury", §8).
//!
//! Run with: `cargo run --release --example crash_consistency`

use barrier_io::{
    BarrierMode, DeviceProfile, FileRef, IoStack, Op, ScriptWorkload, SimDuration, StackConfig,
};

fn txn_script(file: usize) -> Vec<Op> {
    let f = FileRef::Global(file);
    vec![
        Op::Write {
            file: f,
            offset: 0,
            blocks: 2,
        },
        Op::Write {
            file: f,
            offset: 8,
            blocks: 1,
        },
        Op::Fsync { file: f },
        Op::TxnMark,
    ]
}

fn audit(label: &str, mk_cfg: impl Fn(u64) -> StackConfig) {
    let seeds = 30;
    let mut bad_crashes = 0;
    let mut total = 0usize;
    for seed in 0..seeds {
        let mut cfg = mk_cfg(seed);
        cfg.fs.timer_tick = SimDuration::from_micros(1); // full commits
        let mut stack = IoStack::new(cfg);
        let f = stack.create_global_file();
        stack.add_thread(Box::new(ScriptWorkload::repeat(txn_script(f), 120)));
        stack.run_for(SimDuration::from_millis(2 + seed * 2));
        let crash = stack.crash();
        let n = crash.fs_violations.len() + crash.epoch_violations.len();
        total += n;
        bad_crashes += usize::from(n > 0);
    }
    println!("{label:<42} {bad_crashes:>2}/{seeds} inconsistent crashes, {total:>3} violations");
}

fn main() {
    println!("Power-failure audit: 30 random crash points per stack\n");
    audit("BarrierFS on barrier device (LFS recovery)", |s| {
        StackConfig::bfs(DeviceProfile::ufs())
            .with_seed(s)
            .with_history()
    });
    audit("EXT4-DR, full flush", |s| {
        StackConfig::ext4_dr(DeviceProfile::ufs())
            .with_seed(s)
            .with_history()
    });
    audit("EXT4 nobarrier on ORDERLESS device", |s| {
        let mut d = DeviceProfile::ufs().with_barrier_mode(BarrierMode::Unsupported);
        d.cache_blocks = 48;
        StackConfig::ext4_od(d).with_seed(s).with_history()
    });
    audit("BarrierFS on ORDERLESS device", |s| {
        let mut d = DeviceProfile::ufs().with_barrier_mode(BarrierMode::Unsupported);
        d.cache_blocks = 48;
        StackConfig::bfs(d).with_seed(s).with_history()
    });
    println!(
        "\nThe first two rows must be clean; the orderless-device rows show why\n\
         the device half of the contract (the cache-barrier command) matters."
    );
}
